"""The Combine step of candidate enumeration (paper §IV-A3).

Combine looks for pairs of candidates that share a partition key, have no
clustering key, and store different value attributes, and adds their
merge: one column family that can serve both queries while consuming less
space than the two separate ones.
"""

from __future__ import annotations

from repro.indexes.index import Index


def _mergeable(left, right):
    if left.order_fields or right.order_fields:
        return False
    if set(left.hash_fields) != set(right.hash_fields):
        return False
    if left.path.signature != right.path.signature:
        return False
    left_extra = {f.id for f in left.extra_fields}
    right_extra = {f.id for f in right.extra_fields}
    return left_extra != right_extra


def combine_candidates(pool):
    """New candidates obtained by merging compatible pairs in the pool.

    Returns only the additional column families (the originals stay in
    the pool; the optimizer chooses).
    """
    candidates = sorted(pool, key=lambda index: index.key)
    merged = set()
    for i, left in enumerate(candidates):
        for right in candidates[i + 1:]:
            if not _mergeable(left, right):
                continue
            extras = dict.fromkeys(left.extra_fields)
            extras.update(dict.fromkeys(right.extra_fields))
            taken = set(left.hash_fields)
            extra_fields = tuple(f for f in extras if f not in taken)
            combined = Index(left.hash_fields, (), extra_fields, left.path)
            if combined not in pool:
                merged.add(combined)
    return merged
