"""The Combine step of candidate enumeration (paper §IV-A3).

Combine looks for pairs of candidates that share a partition key, have no
clustering key, and store different value attributes, and adds their
merge: one column family that can serve both queries while consuming less
space than the two separate ones.
"""

from __future__ import annotations

from repro.indexes.index import Index


def _mergeable(left, right):
    if left.order_fields or right.order_fields:
        return False
    if set(left.hash_fields) != set(right.hash_fields):
        return False
    if left.path.signature != right.path.signature:
        return False
    left_extra = {f.id for f in left.extra_fields}
    right_extra = {f.id for f in right.extra_fields}
    return left_extra != right_extra


def combine_candidates(pool, recorder=None):
    """New candidates obtained by merging compatible pairs in the pool.

    Returns only the additional column families (the originals stay in
    the pool; the optimizer chooses).  When a ``recorder`` is given,
    every merge is recorded as a ``combiner-merge`` with the two parent
    candidate keys, so its provenance chain resolves through the
    parents back to the source statements.

    Mergeability requires an identical partition key over an identical
    path, so candidates are bucketed by that pair first and only pairs
    within a bucket are compared — all cross-bucket pairs (the vast
    majority on large pools) fail :func:`_mergeable` trivially.  Within
    a bucket the pairwise order matches the old all-pairs scan, so each
    merge's provenance is recorded off the same parent pair.
    """
    candidates = sorted(pool, key=lambda index: index.key)
    if not isinstance(pool, (set, frozenset, dict)):
        pool = set(candidates)
    buckets = {}
    for index in candidates:
        if index.order_fields:
            continue
        bucket_key = (frozenset(f.id for f in index.hash_fields),
                      index.path.signature)
        buckets.setdefault(bucket_key, []).append(index)
    merged = set()
    for members in buckets.values():
        extras_of = [frozenset(f.id for f in index.extra_fields)
                     for index in members]
        for i, left in enumerate(members):
            for j in range(i + 1, len(members)):
                if extras_of[i] == extras_of[j]:
                    continue
                right = members[j]
                extras = dict.fromkeys(left.extra_fields)
                extras.update(dict.fromkeys(right.extra_fields))
                taken = set(left.hash_fields)
                extra_fields = tuple(f for f in extras if f not in taken)
                combined = Index(left.hash_fields, (), extra_fields,
                                 left.path)
                if combined not in pool:
                    merged.add(combined)
                    if recorder is not None:
                        recorder.record(combined, "combiner-merge",
                                        parents=(left.key, right.key))
    return merged
