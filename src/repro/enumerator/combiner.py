"""The Combine step of candidate enumeration (paper §IV-A3).

Combine looks for pairs of candidates that share a partition key, have no
clustering key, and store different value attributes, and adds their
merge: one column family that can serve both queries while consuming less
space than the two separate ones.
"""

from __future__ import annotations

from repro.indexes.index import Index


def _mergeable(left, right):
    if left.order_fields or right.order_fields:
        return False
    if set(left.hash_fields) != set(right.hash_fields):
        return False
    if left.path.signature != right.path.signature:
        return False
    left_extra = {f.id for f in left.extra_fields}
    right_extra = {f.id for f in right.extra_fields}
    return left_extra != right_extra


def combine_candidates(pool, recorder=None):
    """New candidates obtained by merging compatible pairs in the pool.

    Returns only the additional column families (the originals stay in
    the pool; the optimizer chooses).  When a ``recorder`` is given,
    every merge is recorded as a ``combiner-merge`` with the two parent
    candidate keys, so its provenance chain resolves through the
    parents back to the source statements.
    """
    candidates = sorted(pool, key=lambda index: index.key)
    merged = set()
    for i, left in enumerate(candidates):
        for right in candidates[i + 1:]:
            if not _mergeable(left, right):
                continue
            extras = dict.fromkeys(left.extra_fields)
            extras.update(dict.fromkeys(right.extra_fields))
            taken = set(left.hash_fields)
            extra_fields = tuple(f for f in extras if f not in taken)
            combined = Index(left.hash_fields, (), extra_fields, left.path)
            if combined not in pool:
                merged.add(combined)
                if recorder is not None:
                    recorder.record(combined, "combiner-merge",
                                    parents=(left.key, right.key))
    return merged
