"""Schema migration: moving a live store between recommendations.

Workloads drift; re-running the advisor yields a new recommendation.
``plan_migration`` diffs two schemas (column families are identified by
their structural key, so unchanged ones are never rebuilt) and
estimates the data-movement cost; ``execute_migration`` applies the
plan to a store backed by a ground-truth dataset.
"""

from __future__ import annotations

from repro.backend.dataset import materialize_rows
from repro.optimizer.results import SchemaRecommendation


def _indexes_of(schema):
    if isinstance(schema, SchemaRecommendation):
        return list(schema.indexes)
    return list(schema)


class MigrationCostModel:
    """Prices schema migrations in the advisor's abstract cost units.

    Loading a new column family costs ``row_cost`` per materialized
    row (the write-path work of one put) plus ``byte_cost`` per byte
    (transfer and compaction volume); dropping is free — a drop is a
    metadata operation.  The defaults align the per-row charge with
    :class:`~repro.cost.CassandraCostModel`'s ``put_cost`` so one
    loaded row costs about as much as one workload write, which makes
    migration totals directly comparable to serving totals in the
    windowed BIP objective.
    """

    def __init__(self, row_cost=0.15, byte_cost=0.0):
        if row_cost < 0 or byte_cost < 0:
            raise ValueError("migration costs must be non-negative")
        self.row_cost = float(row_cost)
        self.byte_cost = float(byte_cost)

    def index_cost(self, index):
        """Cost of materializing one column family from scratch."""
        return self.row_cost * index.entries + self.byte_cost * index.size

    def migration_cost(self, migration):
        """Total cost of a planned migration (creates only)."""
        return sum(self.index_cost(index)
                   for index in migration.create)

    def cost_terms(self):
        """Parameters as a plain dict (for documents and reports)."""
        return {"row_cost": self.row_cost, "byte_cost": self.byte_cost}

    def __repr__(self):
        return (f"MigrationCostModel(row_cost={self.row_cost}, "
                f"byte_cost={self.byte_cost})")


class SchemaMigration:
    """A diff between two schemas, with movement estimates."""

    def __init__(self, create, drop, keep):
        self.create = tuple(create)
        self.drop = tuple(drop)
        self.keep = tuple(keep)

    @property
    def rows_to_load(self):
        """Estimated rows materialized into the new column families."""
        return sum(index.entries for index in self.create)

    @property
    def bytes_to_load(self):
        return sum(index.size for index in self.create)

    @property
    def bytes_reclaimed(self):
        return sum(index.size for index in self.drop)

    @property
    def is_noop(self):
        return not self.create and not self.drop

    def describe(self):
        lines = [f"Schema migration: create {len(self.create)}, "
                 f"drop {len(self.drop)}, keep {len(self.keep)} "
                 f"column families"]
        for index in self.create:
            lines.append(f"  + {index.key}  {index.triple()}  "
                         f"(~{index.entries:.0f} rows, "
                         f"{index.size / 1e6:.2f} MB)")
        for index in self.drop:
            lines.append(f"  - {index.key}  {index.triple()}")
        lines.append(f"  ~{self.rows_to_load:.0f} rows "
                     f"({self.bytes_to_load / 1e6:.2f} MB) to load, "
                     f"{self.bytes_reclaimed / 1e6:.2f} MB reclaimed")
        return "\n".join(lines)

    def __repr__(self):
        return (f"SchemaMigration(create={len(self.create)}, "
                f"drop={len(self.drop)}, keep={len(self.keep)})")


def plan_migration(current, target):
    """Diff two schemas (recommendations or index collections).

    Column families are matched by structural identity, so a column
    family that exists in both schemas is kept as-is.
    """
    current_indexes = {index.key: index
                       for index in _indexes_of(current)}
    target_indexes = {index.key: index for index in _indexes_of(target)}
    create = [index for key, index in target_indexes.items()
              if key not in current_indexes]
    drop = [index for key, index in current_indexes.items()
            if key not in target_indexes]
    keep = [index for key, index in target_indexes.items()
            if key in current_indexes]
    return SchemaMigration(create, drop, keep)


def execute_migration(store, dataset, migration, charge=False):
    """Apply a migration to a store backed by a dataset.

    New column families are created and populated from the ground
    truth; dropped ones are removed.  ``charge`` meters the loading
    puts against the store's latency model (off by default — bulk
    loading is usually out-of-band).  Returns the number of rows
    loaded.
    """
    loaded = 0
    for index in migration.create:
        column_family = store.create(index)
        rows = materialize_rows(dataset, index)
        loaded += column_family.put_many(rows, charge=charge)
    for index in migration.drop:
        store.drop(index)
    return loaded
