"""Operational tooling around the advisor.

Currently: schema migration planning and execution — when the workload
drifts and a re-run of the advisor recommends a different schema, the
migration planner diffs the two schemas and the executor materializes
the new column families (and drops the obsolete ones) on a running
store without touching shared ones.
"""

from repro.tools.migration import (
    MigrationCostModel,
    SchemaMigration,
    execute_migration,
    plan_migration,
)

__all__ = ["MigrationCostModel", "SchemaMigration", "execute_migration",
           "plan_migration"]
