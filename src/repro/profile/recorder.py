"""The execution flight recorder.

A :class:`FlightRecorder` rides one replay through the execution
engine and captures what actually happened, at two granularities:

* **per statement** — the engine reports the store-metric deltas each
  statement execution caused (rows scanned/read, partitions touched,
  bytes transferred, maintenance puts/deletes) plus the simulated-clock
  delta from the latency model, accumulated here into counter totals
  and a latency histogram per statement label;
* **per operation** — the store reports every charged get/put/delete
  with its shape (rows, bytes) and simulated service time, accumulated
  into per-column-family, per-operation histograms and captured as
  :class:`~repro.cost.calibrate.CalibrationSample` records so a cost
  model can be fitted from real replay traffic instead of synthetic
  probes.

The recorder is attached explicitly (``ExecutionEngine(...,
recorder=...)``), so replays that do not profile pay only a ``None``
check per operation; the telemetry kill-switch does not apply to an
explicitly attached recorder.  Single-threaded by design — replays
drive one engine from one thread.
"""

from __future__ import annotations

from repro.telemetry import LATENCY_BUCKETS_MS, Histogram

__all__ = ["FlightRecorder", "OperationProfile", "StatementProfile"]

#: store-metric deltas accumulated per statement, in report order
STATEMENT_COUNTERS = ("gets", "puts", "deletes", "rows_read",
                      "rows_scanned", "rows_written", "rows_deleted",
                      "bytes_read", "partitions_touched")

#: cap on captured calibration samples (one per store operation)
MAX_SAMPLES = 20_000


def _quantiles(histogram):
    def rounded(value):
        return None if value is None else round(value, 6)

    return {
        "p50_ms": rounded(histogram.quantile(0.50)),
        "p95_ms": rounded(histogram.quantile(0.95)),
        "p99_ms": rounded(histogram.quantile(0.99)),
    }


class StatementProfile:
    """Measured totals for one statement label across a replay."""

    __slots__ = ("label", "kind", "requests", "latency", "counters")

    def __init__(self, label, kind):
        self.label = label
        self.kind = kind
        self.requests = 0
        self.latency = Histogram(LATENCY_BUCKETS_MS)
        self.counters = dict.fromkeys(STATEMENT_COUNTERS, 0)

    def record(self, delta):
        self.requests += 1
        self.latency.observe(delta["simulated_ms"])
        counters = self.counters
        for name in STATEMENT_COUNTERS:
            counters[name] += delta[name]

    def as_dict(self):
        """Measured section of the profile report for this statement."""
        record = {
            "requests": self.requests,
            "total_ms": round(self.latency.total, 6),
            "mean_ms": (round(self.latency.total / self.requests, 6)
                        if self.requests else None),
        }
        record.update(_quantiles(self.latency))
        record.update({name: self.counters[name]
                       for name in STATEMENT_COUNTERS})
        record["latency_histogram"] = self.latency.as_dict()
        return record


class OperationProfile:
    """Measured totals for one (column family, operation kind) pair."""

    __slots__ = ("name", "kind", "requests", "rows", "bytes_read",
                 "latency")

    def __init__(self, name, kind):
        self.name = name
        self.kind = kind
        self.requests = 0
        self.rows = 0
        self.bytes_read = 0
        self.latency = Histogram(LATENCY_BUCKETS_MS)

    def record(self, rows, bytes_read, time_ms):
        self.requests += 1
        self.rows += rows
        self.bytes_read += bytes_read
        self.latency.observe(time_ms)

    def as_dict(self):
        record = {
            "requests": self.requests,
            "rows": self.rows,
            "bytes": self.bytes_read,
            "total_ms": round(self.latency.total, 6),
            "mean_ms": (round(self.latency.total / self.requests, 6)
                        if self.requests else None),
        }
        record.update(_quantiles(self.latency))
        return record


class FlightRecorder:
    """Collects per-statement and per-operation replay measurements.

    Attach by constructing the engine with ``recorder=`` (which also
    wires the store) or via :meth:`attach`.
    """

    def __init__(self, capture_samples=True, max_samples=MAX_SAMPLES):
        self.statements = {}
        self.operations = {}
        self.capture_samples = capture_samples
        self.max_samples = max_samples
        self.samples = []
        self.samples_dropped = 0

    def attach(self, engine):
        """Wire this recorder into an engine and its store."""
        engine.recorder = self
        engine.store.recorder = self
        return engine

    # -- engine-side hook ----------------------------------------------------

    def record_statement(self, label, kind, delta):
        """One statement executed; ``delta`` is the store-metric delta."""
        profile = self.statements.get(label)
        if profile is None:
            profile = self.statements[label] = StatementProfile(label,
                                                                kind)
        profile.record(delta)

    # -- store-side hook -----------------------------------------------------

    def observe_op(self, name, kind, rows, time_ms, returned=None,
                   row_bytes=None, bytes_read=None):
        """One charged store operation on column family ``name``.

        For gets, ``rows`` is the clustering rows *scanned* (what the
        latency model charges for), ``returned``/``bytes_read`` the
        rows and bytes actually transferred.  For puts/deletes,
        ``rows`` is the batch size charged.
        """
        key = (name, kind)
        profile = self.operations.get(key)
        if profile is None:
            profile = self.operations[key] = OperationProfile(name, kind)
        profile.record(returned if returned is not None else rows,
                       bytes_read or 0, time_ms)
        if not self.capture_samples:
            return
        if len(self.samples) >= self.max_samples:
            self.samples_dropped += 1
            return
        if kind == "get":
            # encode the sample so requests/rows/rows*row_bytes exactly
            # reproduce the charged shape: rows = rows scanned, and the
            # per-row byte size chosen so rows * row_bytes equals the
            # bytes actually transferred (scans and transfers are
            # charged separately by the latency model)
            fitted_bytes = ((bytes_read or 0) / rows) if rows else 0.0
            self.samples.append(("get", 1, rows, fitted_bytes, time_ms))
        else:
            self.samples.append((kind, 1, rows, row_bytes or 0,
                                 time_ms))

    # -- output --------------------------------------------------------------

    def calibration_samples(self):
        """Captured operations as :class:`CalibrationSample` records."""
        from repro.cost.calibrate import CalibrationSample
        return [CalibrationSample(*sample) for sample in self.samples]

    def total_requests(self):
        return sum(profile.requests
                   for profile in self.statements.values())

    def column_families_dict(self):
        """``{column family: {operation kind: measured record}}``."""
        section = {}
        for (name, kind) in sorted(self.operations):
            section.setdefault(name, {})[kind] = \
                self.operations[(name, kind)].as_dict()
        return section

    def samples_dict(self, limit=500):
        """Serialized calibration samples (capped for the report)."""
        listed = [{"kind": kind, "requests": requests, "rows": rows,
                   "row_bytes": round(row_bytes, 6),
                   "time_ms": round(time_ms, 6)}
                  for kind, requests, rows, row_bytes, time_ms
                  in self.samples[:limit]]
        return {
            "captured": len(self.samples),
            "dropped": self.samples_dropped,
            "listed": len(listed),
            "truncated": len(self.samples) > limit,
            "samples": listed,
        }
