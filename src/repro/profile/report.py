"""The accuracy report: measured replay latency vs. predicted cost.

Joins a :class:`~repro.profile.recorder.FlightRecorder`'s measured
per-statement latencies against the predicted per-statement costs (and
per-step cost-model terms) of an explain document, producing the
"nose-profile/1" JSON artifact.

The advisor's cost model and the simulator's latency model use
deliberately different constants, so absolute measured/predicted ratios
are not expected to be 1.0 — what the advisor needs is *relative*
fidelity: statements the model calls expensive should measure
expensive.  The report therefore carries both the raw ratios and the
median-normalized ratios, a Spearman rank correlation of the two
statement orderings (predicted cost rank vs. measured latency rank),
and the worst-divergence statements — the ones whose normalized ratio
strays farthest from 1.0, i.e. where the model's relative judgement is
least trustworthy.
"""

from __future__ import annotations

import math

PROFILE_FORMAT = "nose-profile/1"

#: worst-divergence statements listed in the workload section
MAX_DIVERGENCES = 3


def _average_ranks(values):
    """Fractional ranks (1-based, ties averaged) of a value sequence."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tied = position
        while (tied + 1 < len(order)
               and values[order[tied + 1]] == values[order[position]]):
            tied += 1
        # ranks position+1 .. tied+1 share one averaged rank
        rank = (position + tied + 2) / 2.0
        for index in order[position:tied + 1]:
            ranks[index] = rank
        position = tied + 1
    return ranks


def spearman(xs, ys):
    """Spearman rank correlation of two paired sequences.

    Computed as the Pearson correlation of average ranks (exact under
    ties).  Returns None for fewer than two pairs or when either side
    is constant (correlation is undefined there).
    """
    if len(xs) != len(ys):
        raise ValueError("spearman needs paired sequences of equal "
                         f"length, got {len(xs)} and {len(ys)}")
    count = len(xs)
    if count < 2:
        return None
    rank_x = _average_ranks(list(xs))
    rank_y = _average_ranks(list(ys))
    mean_x = sum(rank_x) / count
    mean_y = sum(rank_y) / count
    covariance = sum((a - mean_x) * (b - mean_y)
                     for a, b in zip(rank_x, rank_y))
    variance_x = sum((a - mean_x) ** 2 for a in rank_x)
    variance_y = sum((b - mean_y) ** 2 for b in rank_y)
    if variance_x == 0.0 or variance_y == 0.0:
        return None
    return covariance / math.sqrt(variance_x * variance_y)


def _aggregate_terms(record):
    """Sum the per-step cost-model terms of one explain statement."""
    terms = {}

    def absorb(steps):
        for step in steps:
            for name, value in step.get("terms", {}).items():
                terms[name] = terms.get(name, 0.0) + value

    plan = record.get("plan")
    if plan is not None:
        absorb(plan.get("steps", ()))
    for entry in record.get("maintenance", ()):
        absorb(entry.get("steps", ()))
        for support in entry.get("support_plans", ()):
            absorb(support.get("steps", ()))
    return {name: round(terms[name], 6) for name in sorted(terms)}


def _round(value, digits=6):
    return None if value is None else round(value, digits)


def accuracy_report(recorder, explain, meta=None):
    """Join measured replay data with an explain document's predictions.

    ``recorder`` is a populated :class:`FlightRecorder`, ``explain`` an
    explain document (``nose-explain/1`` dict).  Returns the
    "nose-profile/1" document.
    """
    predicted = explain.get("statements", {})
    statements = {}
    joined = []
    for label in sorted(recorder.statements):
        profile = recorder.statements[label]
        measured = profile.as_dict()
        prediction = predicted.get(label)
        record = {"kind": profile.kind, "measured": measured}
        if prediction is not None:
            mean = measured["mean_ms"]
            cost = prediction.get("cost")
            record["predicted"] = {
                "cost": cost,
                "weight": prediction.get("weight"),
                "weighted_cost": prediction.get("weighted_cost"),
                "terms": _aggregate_terms(prediction),
            }
            if cost and mean is not None:
                ratio = mean / cost
                record["measured_over_predicted"] = _round(ratio)
                joined.append((label, cost, mean, ratio))
        statements[label] = record

    ratios = sorted(ratio for _label, _cost, _mean, ratio in joined)
    median_ratio = None
    if ratios:
        middle = len(ratios) // 2
        median_ratio = (ratios[middle] if len(ratios) % 2
                        else (ratios[middle - 1] + ratios[middle]) / 2.0)
    divergences = []
    for label, cost, mean, ratio in joined:
        normalized = ratio / median_ratio if median_ratio else None
        statements[label]["normalized_ratio"] = _round(normalized)
        if normalized and normalized > 0.0:
            divergences.append((abs(math.log10(normalized)), label,
                                normalized, cost, mean))
    divergences.sort(key=lambda entry: (-entry[0], entry[1]))

    workload = {
        "statements_measured": len(recorder.statements),
        "statements_joined": len(joined),
        "requests": recorder.total_requests(),
        "rank_correlation": _round(spearman(
            [cost for _l, cost, _m, _r in joined],
            [mean for _l, _c, mean, _r in joined])),
        "median_measured_over_predicted": _round(median_ratio),
        "worst_divergences": [
            {"label": label, "normalized_ratio": _round(normalized),
             "predicted_cost": cost, "measured_mean_ms": _round(mean),
             "log10_divergence": _round(magnitude)}
            for magnitude, label, normalized, cost, mean
            in divergences[:MAX_DIVERGENCES]],
    }

    document = {
        "format": PROFILE_FORMAT,
        "meta": dict(meta or {}),
        "workload": workload,
        "statements": statements,
        "column_families": recorder.column_families_dict(),
        "calibration": recorder.samples_dict(),
    }
    return document
