"""Execution profiling: replay a workload, measure it, grade the model.

``profile_recommendation`` is the one-call entry point behind
``nose-advisor profile``: load a recommendation into the in-memory
store, replay a weight-proportional request schedule through the
execution engine with a :class:`FlightRecorder` attached, and join the
measured per-statement latencies against the recommendation's explain
document into a "nose-profile/1" accuracy report (see
:mod:`repro.profile.report`).

The replay also captures per-operation
:class:`~repro.cost.calibrate.CalibrationSample` records, so
``fit_cost_model`` can be fed measured traffic instead of synthetic
probes — closing the calibrate-from-production loop the paper's
constant-fitting step assumes.
"""

from __future__ import annotations

from repro.backend.executor import ExecutionEngine
from repro.explain.document import explain_document
from repro.profile.recorder import FlightRecorder
from repro.profile.report import PROFILE_FORMAT, accuracy_report, spearman
from repro.randgen.data import BindingGenerator

__all__ = ["FlightRecorder", "PROFILE_FORMAT", "accuracy_report",
           "profile_recommendation", "request_schedule", "spearman"]


def request_schedule(workload, requests):
    """Statement labels for a replay, weight-proportional and interleaved.

    Every active statement appears at least once; beyond that, request
    counts are proportional to workload weights (largest-remainder
    rounding, so the total stays close to ``requests``).  Labels are
    interleaved round-robin rather than blocked per statement, so
    store state evolves the way a mixed workload would drive it.
    """
    weighted = sorted(workload.weighted_statements,
                      key=lambda pair: pair[0].label)
    if not weighted:
        return []
    total = sum(weight for _statement, weight in weighted)
    counts = {statement.label: max(1, round(requests * weight / total))
              for statement, weight in weighted}
    schedule = []
    remaining = dict(counts)
    while remaining:
        for statement, _weight in weighted:
            label = statement.label
            left = remaining.get(label)
            if left is None:
                continue
            schedule.append(label)
            if left <= 1:
                del remaining[label]
            else:
                remaining[label] = left - 1
    return schedule


def profile_recommendation(model, workload, recommendation, dataset,
                           seed=0, requests=200, protocol="nose",
                           share_reads=False, requests_factory=None,
                           capture_samples=True, meta=None):
    """Replay a recommendation and report measured-vs-predicted accuracy.

    Builds an :class:`ExecutionEngine` over a fresh store, attaches a
    :class:`FlightRecorder`, replays ``requests`` statements with
    parameters drawn from the live data (``BindingGenerator``, so reads
    usually hit rows), and joins the measurements against the
    recommendation's explain document.

    ``requests_factory``, when given, overrides the generic schedule:
    called as ``requests_factory(count, seed)``, it must return the
    ``(label, params)`` pairs to replay — the RUBiS benchmark plugs its
    transaction-coherent parameter generator in here.

    Returns ``(document, recorder)``: the "nose-profile/1" dict and the
    populated recorder (whose :meth:`~FlightRecorder
    .calibration_samples` feed ``fit_cost_model``).
    """
    recorder = FlightRecorder(capture_samples=capture_samples)
    engine = ExecutionEngine(model, recommendation, dataset,
                             share_reads=share_reads,
                             update_protocol=protocol,
                             recorder=recorder)
    engine.load()
    if requests_factory is not None:
        replay = list(requests_factory(requests, seed))
    else:
        generator = BindingGenerator(dataset, seed=seed, null_rate=0.0)
        planned = ({query.label for query in recommendation.query_plans}
                   | {update.label
                      for update in recommendation.update_plans})
        replay = [(label,
                   generator.bindings_for(workload.statements[label]))
                  for label in request_schedule(workload, requests)
                  if label in planned]
    for label, params in replay:
        engine.execute(label, params)
    details = {"requests": len(replay), "seed": seed,
               "protocol": protocol, "share_reads": share_reads}
    details.update(meta or {})
    document = accuracy_report(recorder,
                               explain_document(recommendation),
                               meta=details)
    return document, recorder
