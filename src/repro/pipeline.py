"""Per-statement artifact store for incremental advising.

NoSE's pipeline decomposes per statement (§IV): candidate enumeration,
plan-space generation and costing all consume one statement at a time,
with only the candidate-combination step (§IV-A3) and the BIP itself
looking across statements.  The advisor exploits that by keeping the
per-statement products in this store, keyed by structural statement
digest plus the stage configuration that produced them, so editing one
statement re-runs the pipeline for that statement alone:

* **enumeration artifacts** — one candidate set per workload query and
  per (update, maintained column family) support round, together with
  the provenance events (candidate, derivation rule) recorded while
  enumerating, replayed verbatim into each new prepare's
  :class:`~repro.explain.provenance.ProvenanceRecorder`;
* **plan artifacts** — one :class:`~repro.planner.plans.PlanSpace` per
  query, keyed additionally by a fingerprint of the *relevant pool
  subset* (the candidates that can appear in any of the query's plans),
  so a pool change far away from a statement never invalidates it; the
  costed/pruned results and their pruning-ledger records ride the
  artifact and are reused too;
* **update-plan artifacts** — one :class:`~repro.planner.plans
  .UpdatePlan` per (update, column family) pair, with the same riding
  pruned results and ledger records.

The store is a bounded, thread-safe LRU; entries are immutable once
stored (pruned results are filled in once per cost model and then only
read).
"""

from __future__ import annotations

import threading

__all__ = [
    "ArtifactStore",
    "EnumerationArtifact",
    "PlanArtifact",
    "UpdatePlanArtifact",
]


class EnumerationArtifact:
    """Candidates one statement's enumeration produced, with provenance.

    ``events`` is the ordered tuple of ``(index, rule)`` provenance
    records emitted while enumerating; replaying them against a fresh
    recorder (with the current statement as source) reproduces the
    cold enumeration's provenance byte for byte.  ``support_count`` is
    the number of support queries enumerated (telemetry parity for the
    update support rounds; zero for workload queries).
    """

    __slots__ = ("indexes", "events", "support_count")

    def __init__(self, indexes, events, support_count=0):
        self.indexes = frozenset(indexes)
        self.events = tuple(events)
        self.support_count = support_count


class PlanArtifact:
    """One query's plan space plus its costed/pruned derivatives.

    ``pruned`` and ``record`` (the pruning-ledger record) are filled in
    by the advisor the first time the space is pruned for a given
    ``(cost model, prune_to)`` configuration — ``pruned_key`` — and
    served from the artifact afterwards.
    """

    __slots__ = ("space", "pruned", "record", "pruned_key", "costed_by")

    def __init__(self, space):
        self.space = space
        self.pruned = None
        self.record = None
        self.pruned_key = None
        self.costed_by = None


class UpdatePlanArtifact:
    """One (update, column family) maintenance plan and its derivatives.

    ``records`` maps support-query labels to their pruning-ledger
    records, mirroring :class:`PlanArtifact`.
    """

    __slots__ = ("plan", "pruned", "records", "pruned_key", "costed_by")

    def __init__(self, plan):
        self.plan = plan
        self.pruned = None
        self.records = None
        self.pruned_key = None
        self.costed_by = None


class ArtifactStore:
    """Bounded, thread-safe LRU cache of per-statement artifacts.

    Keys are tuples of hashable parts — by convention
    ``(kind, statement_digest, *stage_config)``; see
    :meth:`repro.advisor.Advisor.prepare` for the concrete layouts.
    """

    def __init__(self, capacity=4096):
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries = {}
        self._lock = threading.Lock()

    def get(self, key):
        """The stored artifact, or None; refreshes LRU position."""
        with self._lock:
            try:
                value = self._entries.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._entries[key] = value
            self.hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            if key in self._entries:
                self._entries.pop(key)
            elif len(self._entries) >= self.capacity:
                self._entries.pop(next(iter(self._entries)))
                self.evictions += 1
            self._entries[key] = value

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def stats(self):
        """``{hits, misses, evictions, size}`` snapshot."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "size": len(self._entries)}

    def __repr__(self):
        return (f"ArtifactStore(size={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")
