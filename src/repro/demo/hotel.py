"""The hotel-booking running example (paper §II, Fig 1).

The entity graph is adapted, as in the paper, from Hewitt's Cassandra
hotel example: hotels with rooms and amenities, guests making
reservations for rooms, and points of interest near hotels.
"""

from __future__ import annotations

import datetime
import random

from repro.backend.dataset import Dataset
from repro.model import (
    DateField,
    Entity,
    FloatField,
    IDField,
    IntegerField,
    Model,
    StringField,
)
from repro.workload import Workload


def hotel_model(scale=1.0):
    """Build the Fig 1 entity graph.

    ``scale`` multiplies every entity count, keeping ratios fixed
    (1.0 gives a small-city-sized instance).
    """
    def count(base):
        return max(int(base * scale), 1)

    model = Model("hotel")
    model.add_entity(Entity("Hotel", count=count(100))).add_fields(
        IDField("HotelID"),
        StringField("HotelName", size=20),
        StringField("HotelCity", size=12, cardinality=count(20)),
        StringField("HotelState", size=2, cardinality=10),
        StringField("HotelAddress", size=30),
        StringField("HotelPhone", size=10),
    )
    model.add_entity(Entity("Room", count=count(10_000))).add_fields(
        IDField("RoomID"),
        IntegerField("RoomNumber", cardinality=500),
        FloatField("RoomRate", cardinality=100),
    )
    model.add_entity(Entity("Reservation", count=count(100_000))).add_fields(
        IDField("ResID"),
        DateField("ResStartDate", cardinality=365),
        DateField("ResEndDate", cardinality=365),
    )
    model.add_entity(Entity("Guest", count=count(50_000))).add_fields(
        IDField("GuestID"),
        StringField("GuestName", size=20),
        StringField("GuestEmail", size=25),
    )
    model.add_entity(Entity("PointOfInterest", count=count(500))).add_fields(
        IDField("POIID"),
        StringField("POIName", size=20),
        StringField("POIDescription", size=100),
    )
    model.add_entity(Entity("Amenity", count=count(1_000))).add_fields(
        IDField("AmenityID"),
        StringField("AmenityName", size=15),
    )
    model.add_relationship("Hotel", "Rooms", "Room", "Hotel")
    model.add_relationship("Hotel", "Amenities", "Amenity", "Hotel")
    model.add_relationship("Room", "Reservations", "Reservation", "Room")
    model.add_relationship("Guest", "Reservations", "Reservation", "Guest")
    # each hotel lists ~5 nearby POIs; with 5x as many POIs as hotels the
    # average POI is listed by one hotel (100 x 5 == 500 x 1 connections)
    model.add_relationship("Hotel", "PointsOfInterest", "PointOfInterest",
                           "Hotels", kind="many_to_many",
                           forward_fanout=5.0, reverse_fanout=1.0)
    return model.validate()


def hotel_workload(model, include_updates=True):
    """A workload over the hotel model, centred on the paper's examples.

    Includes the Fig 3 query (guests with reservations in a city above a
    rate), the §II points-of-interest queries, and — when
    ``include_updates`` is set — Fig 8-style update statements.
    """
    workload = Workload(model)
    workload.add_statement(
        "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate",
        weight=5.0, label="guests_in_city_above_rate")
    workload.add_statement(
        "SELECT PointOfInterest.POIName, PointOfInterest.POIDescription "
        "FROM PointOfInterest.Hotels.Rooms.Reservations.Guest "
        "WHERE Guest.GuestID = ?guest",
        weight=10.0, label="pois_for_guest")
    workload.add_statement(
        "SELECT PointOfInterest.POIName, PointOfInterest.POIDescription "
        "FROM PointOfInterest.Hotels WHERE Hotel.HotelID = ?hotel",
        weight=3.0, label="pois_for_hotel")
    workload.add_statement(
        "SELECT Hotel.HotelName, Hotel.HotelAddress, Hotel.HotelPhone "
        "FROM Hotel WHERE Hotel.HotelCity = ?city "
        "AND Hotel.HotelState = ?state ORDER BY Hotel.HotelName",
        weight=2.0, label="hotels_by_location")
    workload.add_statement(
        "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ?guest",
        weight=4.0, label="guest_by_id")
    if include_updates:
        workload.add_statement(
            "INSERT INTO Reservation SET ResID = ?, "
            "ResStartDate = ?start, ResEndDate = ?end "
            "AND CONNECT TO Guest(?guest), Room(?room)",
            weight=2.0, label="make_reservation")
        workload.add_statement(
            "UPDATE PointOfInterest SET POIDescription = ?description "
            "WHERE PointOfInterest.POIID = ?poi",
            weight=1.0, label="update_poi_description")
        workload.add_statement(
            "DELETE FROM Guest WHERE Guest.GuestID = ?guest",
            weight=0.1, label="delete_guest")
    return workload


def hotel_dataset(model, seed=42):
    """Populate a :class:`~repro.backend.Dataset` for the hotel model.

    Generates rows matching the model's entity counts (so cardinality
    statistics agree with the data), deterministic under ``seed``.
    """
    rng = random.Random(seed)
    dataset = Dataset(model)
    counts = {name: entity.count
              for name, entity in model.entities.items()}
    cities = [f"city-{i}" for i in
              range(model.entity("Hotel")["HotelCity"].cardinality)]
    for hotel in range(counts["Hotel"]):
        dataset.add_row("Hotel", {
            "HotelID": hotel,
            "HotelName": f"hotel-{hotel}",
            "HotelCity": rng.choice(cities),
            "HotelState": f"S{hotel % 10}",
            "HotelAddress": f"{hotel} Main Street",
            "HotelPhone": f"555-{hotel:04d}",
        })
    for room in range(counts["Room"]):
        dataset.add_row("Room", {
            "RoomID": room,
            "RoomNumber": room % 500,
            "RoomRate": float(rng.randint(50, 500)),
        })
        dataset.connect("Hotel", room % counts["Hotel"], "Rooms", room)
    for amenity in range(counts["Amenity"]):
        dataset.add_row("Amenity", {
            "AmenityID": amenity,
            "AmenityName": f"amenity-{amenity % 20}",
        })
        dataset.connect("Hotel", amenity % counts["Hotel"], "Amenities",
                        amenity)
    for guest in range(counts["Guest"]):
        dataset.add_row("Guest", {
            "GuestID": guest,
            "GuestName": f"guest-{guest}",
            "GuestEmail": f"guest{guest}@example.com",
        })
    for poi in range(counts["PointOfInterest"]):
        dataset.add_row("PointOfInterest", {
            "POIID": poi,
            "POIName": f"poi-{poi}",
            "POIDescription": f"a sight to see, number {poi}",
        })
        for _ in range(2):
            dataset.connect("Hotel", rng.randrange(counts["Hotel"]),
                            "PointsOfInterest", poi)
    day_zero = datetime.datetime(2016, 1, 1)
    for reservation in range(counts["Reservation"]):
        start = day_zero + datetime.timedelta(days=rng.randint(0, 364))
        dataset.add_row("Reservation", {
            "ResID": reservation,
            "ResStartDate": start,
            "ResEndDate": start + datetime.timedelta(days=rng.randint(1,
                                                                      14)),
        })
        dataset.connect("Room", rng.randrange(counts["Room"]),
                        "Reservations", reservation)
        dataset.connect("Guest", rng.randrange(counts["Guest"]),
                        "Reservations", reservation)
    return dataset
