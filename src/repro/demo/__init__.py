"""Demonstration models: the paper's running examples."""

from repro.demo.hotel import hotel_dataset, hotel_model, hotel_workload

__all__ = ["hotel_dataset", "hotel_model", "hotel_workload"]
