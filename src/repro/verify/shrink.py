"""Shrinking: reduce a divergence to a minimal failing reproducer.

Given a request sequence and a starting dataset that produce a
divergence, the shrinker minimizes along two axes while preserving the
failure signature (divergence kind + statement label + column family):

1. the request sequence — the tail after the first failure is cut, then
   earlier requests are removed one at a time (delta-debugging style);
2. the dataset — entity rows are removed in halving chunks, then
   individually, as long as the divergence persists.

The recommendation (the plans under test) is held fixed: re-advising a
smaller workload would change the artifact being debugged.  Every
candidate is replayed from a fresh dataset copy through a fresh engine,
so shrinking is deterministic and side-effect free.
"""

from __future__ import annotations

from repro.verify.runner import DifferentialRunner


class ShrunkRepro:
    """A minimal reproducer for one divergence."""

    def __init__(self, divergence, requests, dataset, replays):
        self.divergence = divergence
        #: minimal ``(statement, params)`` sequence ending in the failure
        self.requests = requests
        #: minimal starting dataset reproducing the failure
        self.dataset = dataset
        #: number of candidate replays the shrinker executed
        self.replays = replays

    def as_dict(self):
        return {
            "divergence": self.divergence.as_dict(),
            "requests": [
                {"label": statement.label,
                 "statement": str(statement),
                 "params": {name: _clean(value)
                            for name, value in params.items()}}
                for statement, params in self.requests],
            "dataset_rows": {name: len(rows)
                             for name, rows in self.dataset.rows.items()
                             if rows},
            "dataset": {
                name: [_clean_row(row) for row in rows.values()]
                for name, rows in self.dataset.rows.items() if rows},
            "links": {
                key: {str(source): sorted(targets, key=repr)
                      for source, targets in links.items() if targets}
                for key, links in self.dataset.links.items()
                if any(links.values())},
            "replays": self.replays,
        }

    def __repr__(self):
        rows = sum(len(rows) for rows in self.dataset.rows.values())
        return (f"ShrunkRepro({self.divergence.kind!r}, "
                f"requests={len(self.requests)}, rows={rows})")


def _clean(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _clean_row(row):
    return {field: _clean(value) for field, value in row.items()}


class Shrinker:
    """Shrinks one divergence; see :func:`shrink_divergence`."""

    def __init__(self, model, recommendation, divergence,
                 update_protocol="nose", share_reads=False,
                 engine_factory=None, max_dataset_passes=4):
        self.model = model
        self.recommendation = recommendation
        self.target = divergence
        self.update_protocol = update_protocol
        self.share_reads = share_reads
        self.engine_factory = engine_factory
        self.max_dataset_passes = max_dataset_passes
        self.replays = 0

    def _replay(self, dataset, requests):
        """Replays ``requests`` on a copy of ``dataset``; returns the
        first divergence matching the target, or None."""
        self.replays += 1
        runner = DifferentialRunner(
            self.model, self.recommendation, dataset.copy(),
            update_protocol=self.update_protocol,
            share_reads=self.share_reads,
            engine_factory=self.engine_factory)
        for statement, params in requests:
            for divergence in runner.check(statement, params):
                if divergence.matches(self.target):
                    return divergence
        return None

    def shrink(self, dataset, requests):
        requests = self._cut_tail(dataset, requests)
        requests = self._drop_requests(dataset, requests)
        dataset = self._shrink_dataset(dataset, requests)
        final = self._replay(dataset, requests) or self.target
        return ShrunkRepro(final, requests, dataset, self.replays)

    def _cut_tail(self, dataset, requests):
        """Truncate after the first request that triggers the target."""
        for cut in range(1, len(requests) + 1):
            if self._replay(dataset, requests[:cut]) is not None:
                return list(requests[:cut])
        # target not reproducible (flaky); keep everything
        return list(requests)

    def _drop_requests(self, dataset, requests):
        """Remove earlier requests one at a time, last-to-first."""
        kept = list(requests)
        for position in range(len(kept) - 2, -1, -1):
            candidate = kept[:position] + kept[position + 1:]
            if self._replay(dataset, candidate) is not None:
                kept = candidate
        return kept

    def _shrink_dataset(self, dataset, requests):
        current = dataset.copy()
        for _ in range(self.max_dataset_passes):
            shrunk = False
            for entity_name in current.rows:
                ids = list(current.rows[entity_name])
                chunk = max(len(ids) // 2, 1)
                while chunk >= 1 and ids:
                    position = 0
                    while position < len(ids):
                        batch = ids[position:position + chunk]
                        candidate = current.copy()
                        for entity_id in batch:
                            candidate.delete_entity(entity_name,
                                                    entity_id)
                        if self._replay(candidate, requests) is not None:
                            current = candidate
                            ids = [i for i in ids if i not in batch]
                            shrunk = True
                        else:
                            position += chunk
                    if chunk == 1:
                        break
                    chunk = max(chunk // 2, 1)
            if not shrunk:
                break
        return current


def shrink_divergence(model, recommendation, dataset, requests,
                      divergence, update_protocol="nose",
                      share_reads=False, engine_factory=None):
    """Minimize ``(requests, dataset)`` for one observed divergence.

    ``dataset`` must be the *initial* state the failing run started
    from (not the post-run mutated state); ``requests`` the sequence of
    ``(statement, params)`` pairs that was executed.  Returns a
    :class:`ShrunkRepro`.
    """
    shrinker = Shrinker(model, recommendation, divergence,
                        update_protocol=update_protocol,
                        share_reads=share_reads,
                        engine_factory=engine_factory)
    return shrinker.shrink(dataset, requests)
