"""Fuzz driver: random workloads through the differential oracle.

Follows the §VII-B methodology end to end: a random entity graph, a
random workload over it, a random dataset with NULLs and orphaned
relationship ends, a real advisor recommendation, and a random request
sequence with data-driven parameter bindings — all seeded.  Every
request is cross-checked by the :class:`DifferentialRunner`; any
divergence is shrunk to a minimal failing statement + dataset.
"""

from __future__ import annotations

import random

from repro.advisor import Advisor
from repro.randgen import (
    BindingGenerator,
    random_dataset,
    random_model,
    random_workload,
)
from repro.verify.runner import DifferentialRunner
from repro.verify.shrink import shrink_divergence


class FuzzTrial:
    """Outcome of one (model, workload, dataset, protocol) combination."""

    def __init__(self, seed, protocol, checks, divergences, shrunk):
        self.seed = seed
        self.protocol = protocol
        self.checks = checks
        self.divergences = divergences
        self.shrunk = shrunk

    @property
    def ok(self):
        return not self.divergences

    def as_dict(self):
        record = {"seed": self.seed, "protocol": self.protocol,
                  "checks": self.checks, "ok": self.ok,
                  "divergences": [d.as_dict() for d in self.divergences]}
        if self.shrunk is not None:
            record["shrunk"] = self.shrunk.as_dict()
        return record


def fuzz_workloads(trials=3, seed=0, entities=5, queries=5, updates=2,
                   inserts=1, requests=40, rows_per_entity=16,
                   protocols=("nose", "expert"), max_plans=100,
                   engine_factory=None, shrink=True, extended=False):
    """Run ``trials`` random differential-verification rounds.

    Returns a list of :class:`FuzzTrial`, one per (trial, protocol);
    failures carry their divergences and a shrunk minimal reproducer.
    Fully deterministic under ``seed``.  ``extended`` draws workloads
    mixing the extended statement-language constructs (aggregation,
    IN-lists, ``!=``, OR) into the trials.
    """
    results = []
    for trial in range(trials):
        trial_seed = seed * 7919 + trial
        model = random_model(entities=entities, seed=trial_seed)
        workload = random_workload(model, queries=queries,
                                   updates=updates, inserts=inserts,
                                   seed=trial_seed, extended=extended)
        dataset = random_dataset(model, seed=trial_seed,
                                 rows_per_entity=rows_per_entity)
        dataset.sync_counts()
        recommendation = Advisor(model, max_plans=max_plans).recommend(
            workload)
        statements = list(workload.statements.values())
        for protocol in protocols:
            initial = dataset.copy()
            live = dataset.copy()
            # str hash is process-randomized; derive a stable offset
            rng = random.Random(trial_seed
                                + sum(ord(c) for c in protocol))
            generator = BindingGenerator(live, seed=trial_seed)
            runner = DifferentialRunner(
                model, recommendation, live,
                update_protocol=protocol,
                engine_factory=engine_factory)
            request_log = []
            for _ in range(requests):
                statement = rng.choice(statements)
                params = generator.bindings_for(statement)
                request_log.append((statement, params))
                if runner.check(statement, params):
                    break
            shrunk = None
            if runner.divergences and shrink:
                shrunk = shrink_divergence(
                    model, recommendation, initial, request_log,
                    runner.divergences[0], update_protocol=protocol,
                    engine_factory=engine_factory)
            results.append(FuzzTrial(trial_seed, protocol,
                                     runner.checks,
                                     list(runner.divergences), shrunk))
    return results
