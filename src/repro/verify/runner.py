"""Differential runner: plan execution vs. the reference interpreter.

Loads a recommendation into the in-memory store, executes statements
through :class:`ExecutionEngine`, and checks every result against the
reference interpreter: multiset equality of distinct result rows,
prefix-ordered equality under ORDER BY, subset semantics under LIMIT
(binding-level truncation makes limited results plan-dependent), and —
after every write — a store-vs-dataset consistency sweep that
rematerializes each recommended column family from the ground truth and
compares it to the live store state.
"""

from __future__ import annotations

import traceback

from repro import telemetry
from repro.backend.dataset import materialize_rows
from repro.backend.executor import ExecutionEngine
from repro.exceptions import NoseError
from repro.verify.interpreter import ReferenceInterpreter
from repro.workload.statements import Query

#: cap on example rows carried inside a divergence record
MAX_EXAMPLES = 5


class Divergence:
    """One disagreement between plan execution and the reference.

    ``kind`` is one of ``result_mismatch`` (query rows differ),
    ``order_violation`` (rows right, ORDER BY order wrong),
    ``store_inconsistent`` (a column family no longer matches the
    ground truth after a write), or ``error`` (the executor raised).
    """

    def __init__(self, kind, label, params, message, index=None,
                 expected=None, actual=None):
        self.kind = kind
        self.label = label
        self.params = dict(params or {})
        self.message = message
        self.index = index
        self.expected = expected
        self.actual = actual

    def matches(self, other):
        """Same failure signature (the shrinker's invariant)."""
        return (self.kind == other.kind and self.label == other.label
                and self.index == other.index)

    def as_dict(self):
        def clean(value):
            if isinstance(value, (list, tuple)):
                return [clean(item) for item in value]
            if isinstance(value, dict):
                return {str(key): clean(item)
                        for key, item in value.items()}
            if value is None or isinstance(value, (bool, int, float,
                                                   str)):
                return value
            return str(value)

        record = {"kind": self.kind, "label": self.label,
                  "params": clean(self.params), "message": self.message}
        if self.index is not None:
            record["index"] = self.index
        if self.expected is not None:
            record["expected"] = clean(self.expected)
        if self.actual is not None:
            record["actual"] = clean(self.actual)
        return record

    def __repr__(self):
        return (f"Divergence({self.kind!r}, {self.label!r}, "
                f"{self.message!r})")


class DifferentialRunner:
    """Cross-checks one recommendation's execution against the oracle.

    ``engine_factory`` builds the engine under test (defaults to
    :class:`ExecutionEngine`); the mutation tests inject deliberately
    broken engines through it to prove the oracle catches them.
    """

    def __init__(self, model, recommendation, dataset,
                 update_protocol="nose", share_reads=False,
                 engine_factory=None):
        self.model = model
        self.recommendation = recommendation
        self.dataset = dataset
        self.update_protocol = update_protocol
        factory = engine_factory or ExecutionEngine
        self.engine = factory(model, recommendation, dataset,
                              share_reads=share_reads,
                              update_protocol=update_protocol)
        self.engine.load()
        self.interpreter = ReferenceInterpreter(model, dataset)
        self.divergences = []
        self.checks = 0

    @property
    def ok(self):
        return not self.divergences

    # -- driving -----------------------------------------------------------

    def run(self, requests):
        """Check a sequence of ``(statement, params)`` pairs in order;
        returns all divergences found."""
        for statement, params in requests:
            self.check(statement, params)
        return self.divergences

    def check(self, statement, params):
        """Check one statement; returns the divergences it produced."""
        before = len(self.divergences)
        self.checks += 1
        active = telemetry.current()
        if active.enabled:
            active.count("verify.checks")
        try:
            if isinstance(statement, Query):
                self._check_query(statement, params)
            else:
                self._check_update(statement, params)
        except NoseError as error:
            self._diverge("error", statement.label, params,
                          f"{type(error).__name__}: {error}")
        except (TypeError, ValueError, KeyError) as error:
            self._diverge(
                "error", statement.label, params,
                f"executor crashed: {type(error).__name__}: {error}\n"
                + traceback.format_exc(limit=5))
        return self.divergences[before:]

    # -- queries -----------------------------------------------------------

    def _check_query(self, query, params):
        executed = self.engine.execute_query(query, params)
        reference = self.interpreter.evaluate_query(query, params)
        executed_keys = [reference.key_of(row) for row in executed]
        expected_keys = reference.full_keys
        got_keys = set(executed_keys)
        if len(executed_keys) != len(got_keys):
            self._diverge("result_mismatch", query.label, params,
                          "executed result contains duplicate rows",
                          actual=executed[:MAX_EXAMPLES])
            return
        if query.limit is None:
            if got_keys != expected_keys:
                missing = sorted(expected_keys - got_keys, key=repr)
                extra = sorted(got_keys - expected_keys, key=repr)
                self._diverge(
                    "result_mismatch", query.label, params,
                    f"result rows differ: {len(missing)} missing, "
                    f"{len(extra)} unexpected "
                    f"(expected {len(expected_keys)} rows, "
                    f"got {len(got_keys)})",
                    expected=missing[:MAX_EXAMPLES],
                    actual=extra[:MAX_EXAMPLES])
                return
        else:
            if len(executed_keys) > query.limit:
                self._diverge(
                    "result_mismatch", query.label, params,
                    f"LIMIT {query.limit} exceeded: "
                    f"{len(executed_keys)} rows returned",
                    actual=executed[:MAX_EXAMPLES])
                return
            extra = got_keys - expected_keys
            if extra:
                self._diverge(
                    "result_mismatch", query.label, params,
                    f"{len(extra)} returned row(s) match no join row "
                    "of the reference result",
                    expected=sorted(expected_keys,
                                    key=repr)[:MAX_EXAMPLES],
                    actual=sorted(extra, key=repr)[:MAX_EXAMPLES])
                return
        if query.order_by:
            self._check_order(query, params, executed_keys, reference)

    def _check_order(self, query, params, executed_keys, reference):
        previous = None
        for key in executed_keys:
            order_key = reference.order_keys.get(key)
            if order_key is None:  # pragma: no cover - caught above
                continue
            if previous is not None and order_key < previous:
                self._diverge(
                    "order_violation", query.label, params,
                    "rows are not in ORDER BY order "
                    f"(fields {', '.join(f.id for f in query.order_by)})",
                    expected=[reference.key_of(row)
                              for row in reference.rows[:MAX_EXAMPLES]],
                    actual=executed_keys[:MAX_EXAMPLES])
                return
            previous = order_key

    # -- updates -----------------------------------------------------------

    def _check_update(self, update, params):
        self.engine.execute_update(update, params)
        self.sweep(label=update.label, params=params)

    def sweep(self, label="(sweep)", params=None):
        """Store-vs-dataset consistency: every recommended column family
        must equal a fresh materialization from the ground truth."""
        for index in self.recommendation.indexes:
            column_family = self.engine.store[index.key]
            expected = {}
            for row in materialize_rows(self.dataset, index):
                expected[column_family.row_key(row)] = row
            actual = {column_family.row_key(row): row
                      for row in column_family.rows()}
            if expected == actual:
                continue
            missing = [expected[key] for key in
                       sorted(set(expected) - set(actual),
                              key=repr)[:MAX_EXAMPLES]]
            stale = [actual[key] for key in
                     sorted(set(actual) - set(expected),
                            key=repr)[:MAX_EXAMPLES]]
            differing = [
                {"stored": actual[key], "expected": expected[key]}
                for key in sorted(set(actual) & set(expected), key=repr)
                if actual[key] != expected[key]][:MAX_EXAMPLES]
            self._diverge(
                "store_inconsistent", label, params,
                f"column family {index.key} diverged from the dataset "
                f"after {label}: {len(set(expected) - set(actual))} "
                f"missing, {len(set(actual) - set(expected))} stale, "
                f"{len(differing)}+ differing row(s) "
                f"[{self.update_protocol} protocol]",
                index=index.key,
                expected=missing, actual=stale or differing)
        return self.divergences

    def _diverge(self, kind, label, params, message, index=None,
                 expected=None, actual=None):
        active = telemetry.current()
        if active.enabled:
            active.count("verify.divergences")
            active.count(f"verify.divergences.{kind}")
        self.divergences.append(Divergence(
            kind, label, params, message, index=index,
            expected=expected, actual=actual))
