"""Differential execution oracle (the correctness backstop of §VII-A).

The paper validates NoSE by executing recommended plans against a real
store; this package validates our execution engine by executing the
same statements twice — once through the recommended plans and the
in-memory store, once through a reference interpreter that evaluates
statement semantics directly over the ground-truth dataset — and
comparing the answers.  A fuzz driver extends the check to random
models, workloads and datasets, and shrinks any divergence to a
minimal reproducer.

Entry points:

* :class:`ReferenceInterpreter` — canonical statement semantics.
* :class:`DifferentialRunner` — engine-vs-oracle checks plus
  store-vs-dataset consistency sweeps after every write.
* :func:`verify_recommendation` — drive a whole workload, both update
  protocols, from one call (what ``nose-advisor verify`` uses).
* :func:`fuzz_workloads` / :func:`shrink_divergence` — randomized
  search for executor bugs with minimal reproducers.
"""

from __future__ import annotations

from repro.randgen import BindingGenerator
from repro.verify.fuzz import FuzzTrial, fuzz_workloads
from repro.verify.interpreter import ReferenceInterpreter, ReferenceResult
from repro.verify.runner import Divergence, DifferentialRunner
from repro.verify.shrink import ShrunkRepro, shrink_divergence

__all__ = [
    "BindingGenerator",
    "Divergence",
    "DifferentialRunner",
    "FuzzTrial",
    "ReferenceInterpreter",
    "ReferenceResult",
    "ShrunkRepro",
    "fuzz_workloads",
    "shrink_divergence",
    "verify_recommendation",
]


def verify_recommendation(model, workload, recommendation, dataset,
                          seed=0, rounds=3, protocols=("nose", "expert"),
                          requests_factory=None, engine_factory=None,
                          shrink=True):
    """Differentially verify one recommendation against a workload.

    Replays ``rounds`` passes over every workload statement (parameters
    drawn from the live data unless ``requests_factory`` supplies its
    own ``(statement, params)`` sequence), once per update protocol,
    each from a fresh copy of ``dataset``.  Returns a report dict with
    one entry per protocol, including any shrunk reproducer.
    """
    report = {"seed": seed, "protocols": {}, "ok": True}
    for protocol in protocols:
        initial = dataset.copy()
        live = dataset.copy()
        if requests_factory is not None:
            requests = list(requests_factory(live, seed))
        else:
            generator = BindingGenerator(live, seed=seed)
            requests = []
            for _ in range(rounds):
                for statement in workload.statements.values():
                    requests.append(
                        (statement, generator.bindings_for(statement)))
        runner = DifferentialRunner(model, recommendation, live,
                                    update_protocol=protocol,
                                    engine_factory=engine_factory)
        for statement, params in requests:
            if runner.check(statement, params):
                break
        entry = {"checks": runner.checks,
                 "ok": runner.ok,
                 "divergences": [d.as_dict()
                                 for d in runner.divergences]}
        if runner.divergences and shrink:
            executed = requests[:runner.checks]
            shrunk = shrink_divergence(
                model, recommendation, initial, executed,
                runner.divergences[0], update_protocol=protocol,
                engine_factory=engine_factory)
            entry["shrunk"] = shrunk.as_dict()
        report["protocols"][protocol] = entry
        report["ok"] = report["ok"] and runner.ok
    return report
