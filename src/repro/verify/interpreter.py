"""Reference interpreter: statement semantics over the ground truth.

Evaluates any workload statement directly against a :class:`Dataset` and
the entity graph — no plans, no column families, no store.  This is the
semantic yardstick the differential runner compares plan execution
against: deliberately the simplest possible evaluation (full path join,
then filter, then project), using the canonical NULL/ordering/limit
rules of :mod:`repro.workload.semantics`.

Queries return a :class:`ReferenceResult`; write statements mutate the
dataset exactly as :meth:`Dataset.apply` defines and return the affected
target IDs.
"""

from __future__ import annotations

from repro.exceptions import ExecutionError
from repro.workload.semantics import row_ordering_key
from repro.workload.statements import Query


class ReferenceResult:
    """The reference answer for one query.

    ``rows`` is the ordered list of distinct selected rows (dicts keyed
    by field id): join rows are filtered, sorted by the ORDER BY fields
    (stable, NULLS LAST), deduplicated on the selected values keeping
    first occurrence, and truncated to LIMIT.  ``full_rows`` is the same
    list before the LIMIT cut, and ``order_keys`` maps each distinct
    selected tuple to its minimal ORDER BY sort key — what the runner
    uses to check that an executed ordering is consistent.
    """

    def __init__(self, query, rows, full_rows, order_keys):
        self.query = query
        self.rows = rows
        self.full_rows = full_rows
        self.order_keys = order_keys

    def key_of(self, row):
        """The distinct-row identity of one result row."""
        return tuple(row.get(field.id) for field in self.query.select)

    @property
    def full_keys(self):
        return {self.key_of(row) for row in self.full_rows}

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return (f"ReferenceResult({self.query.label!r}, "
                f"rows={len(self.rows)})")


class ReferenceInterpreter:
    """Evaluates workload statements over a ground-truth dataset."""

    def __init__(self, model, dataset):
        self.model = model
        self.dataset = dataset

    def execute(self, statement, params):
        """Evaluate one statement: queries return a
        :class:`ReferenceResult`, writes mutate the dataset and return
        the affected target-entity IDs."""
        if isinstance(statement, Query):
            return self.evaluate_query(statement, params)
        return self.dataset.apply(statement, params)

    # -- queries -----------------------------------------------------------

    def evaluate_query(self, query, params):
        path = query.key_path
        join_rows = self._join_rows(query, params)
        if query.order_by:
            positions = [self._position(path, field)
                         for field in query.order_by]
            join_rows.sort(key=lambda ids: row_ordering_key(
                self._value(path, position, ids, field)
                for field, position in zip(query.order_by, positions)))
        select_positions = [self._position(path, field)
                            for field in query.select]

        def project(ids):
            return {field.id: self._value(path, position, ids, field)
                    for field, position in zip(query.select,
                                               select_positions)}

        full_rows = []
        order_keys = {}
        seen = set()
        for ids in join_rows:
            row = project(ids)
            key = tuple(row[field.id] for field in query.select)
            if key in seen:
                continue
            seen.add(key)
            full_rows.append(row)
            if query.order_by:
                order_keys[key] = row_ordering_key(
                    self._value(path, position, ids, field)
                    for field, position in zip(query.order_by,
                                               positions))
        rows = full_rows
        if query.limit is not None:
            rows = full_rows[:query.limit]
        return ReferenceResult(query, rows, full_rows, order_keys)

    def _join_rows(self, query, params):
        """All full-path join ID tuples satisfying the predicates."""
        path = query.key_path
        tuples = self.dataset.join_tuples(path)
        for condition in query.conditions:
            position = self._position(path, condition.field)
            bound = params[condition.parameter]
            field_id = condition.field.id
            kept = []
            for ids in tuples:
                value = self._row(path, position, ids).get(field_id)
                if condition.matches(value, bound):
                    kept.append(ids)
            tuples = kept
        return tuples

    def _position(self, path, field):
        position = path.index_of(field.parent)
        if position < 0:
            raise ExecutionError(
                f"field {field.id} lies off the path {path}")
        return position

    def _row(self, path, position, ids):
        entity = path.entities[position]
        return self.dataset.rows[entity.name].get(ids[position], {})

    def _value(self, path, position, ids, field):
        return self._row(path, position, ids).get(field.id)
