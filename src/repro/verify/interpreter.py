"""Reference interpreter: statement semantics over the ground truth.

Evaluates any workload statement directly against a :class:`Dataset` and
the entity graph — no plans, no column families, no store.  This is the
semantic yardstick the differential runner compares plan execution
against: deliberately the simplest possible evaluation (full path join,
then filter, then project), using the canonical NULL/ordering/limit
rules of :mod:`repro.workload.semantics`.

Queries return a :class:`ReferenceResult`; write statements mutate the
dataset exactly as :meth:`Dataset.apply` defines and return the affected
target IDs.
"""

from __future__ import annotations

from repro.exceptions import ExecutionError
from repro.workload.semantics import aggregate_value, row_ordering_key
from repro.workload.statements import Query


class ReferenceResult:
    """The reference answer for one query.

    ``rows`` is the ordered list of distinct selected rows (dicts keyed
    by field id): join rows are filtered, sorted by the ORDER BY fields
    (stable, NULLS LAST), deduplicated on the selected values keeping
    first occurrence, and truncated to LIMIT.  ``full_rows`` is the same
    list before the LIMIT cut, and ``order_keys`` maps each distinct
    selected tuple to its minimal ORDER BY sort key — what the runner
    uses to check that an executed ordering is consistent.
    """

    def __init__(self, query, rows, full_rows, order_keys):
        self.query = query
        self.rows = rows
        self.full_rows = full_rows
        self.order_keys = order_keys

    def key_of(self, row):
        """The distinct-row identity of one result row.

        Keyed by the query's output columns — select-field ids for plain
        queries, group keys plus aggregate output ids for aggregated
        ones.
        """
        ids = getattr(self.query, "output_ids", None)
        if ids is None:
            ids = tuple(field.id for field in self.query.select)
        return tuple(row.get(field_id) for field_id in ids)

    @property
    def full_keys(self):
        return {self.key_of(row) for row in self.full_rows}

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return (f"ReferenceResult({self.query.label!r}, "
                f"rows={len(self.rows)})")


class ReferenceInterpreter:
    """Evaluates workload statements over a ground-truth dataset."""

    def __init__(self, model, dataset):
        self.model = model
        self.dataset = dataset

    def execute(self, statement, params):
        """Evaluate one statement: queries return a
        :class:`ReferenceResult`, writes mutate the dataset and return
        the affected target-entity IDs."""
        if isinstance(statement, Query):
            return self.evaluate_query(statement, params)
        return self.dataset.apply(statement, params)

    # -- queries -----------------------------------------------------------

    def evaluate_query(self, query, params):
        path = query.key_path
        join_rows = self._join_rows(query, params)
        if query.order_by:
            positions = [self._position(path, field)
                         for field in query.order_by]
            join_rows.sort(key=lambda ids: row_ordering_key(
                self._value(path, position, ids, field)
                for field, position in zip(query.order_by, positions)))
        if getattr(query, "is_aggregate", False):
            return self._evaluate_aggregate(query, join_rows)
        select_positions = [self._position(path, field)
                            for field in query.select]

        def project(ids):
            return {field.id: self._value(path, position, ids, field)
                    for field, position in zip(query.select,
                                               select_positions)}

        full_rows = []
        order_keys = {}
        seen = set()
        for ids in join_rows:
            row = project(ids)
            key = tuple(row[field.id] for field in query.select)
            if key in seen:
                continue
            seen.add(key)
            full_rows.append(row)
            if query.order_by:
                order_keys[key] = row_ordering_key(
                    self._value(path, position, ids, field)
                    for field, position in zip(query.order_by,
                                               positions))
        rows = full_rows
        if query.limit is not None:
            rows = full_rows[:query.limit]
        return ReferenceResult(query, rows, full_rows, order_keys)

    def _evaluate_aggregate(self, query, join_rows):
        """Group and fold: the reference semantics of GROUP BY.

        Mirrors the executor's AggregateStep exactly: project the
        underlying select (which includes the target entity's ID),
        deduplicate to distinct target rows keeping first occurrence,
        group by the GROUP BY keys in first-seen order (the join rows
        arrive sorted when the query has an ORDER BY, and ORDER BY is
        restricted to grouping keys), then fold each aggregate with
        :func:`repro.workload.semantics.aggregate_value`.
        """
        path = query.key_path
        select_positions = [self._position(path, field)
                            for field in query.select]
        distinct = []
        seen = set()
        for ids in join_rows:
            row = {field.id: self._value(path, position, ids, field)
                   for field, position in zip(query.select,
                                              select_positions)}
            key = tuple(row[field.id] for field in query.select)
            if key not in seen:
                seen.add(key)
                distinct.append(row)
        group_ids = [field.id for field in query.group_by]
        groups = {}
        for row in distinct:
            key = tuple(row.get(field_id) for field_id in group_ids)
            groups.setdefault(key, []).append(row)
        if not groups and not group_ids:
            # a global aggregate over zero rows still yields one row
            groups[()] = []
        full_rows = []
        order_keys = {}
        for members in groups.values():
            out = ({field_id: members[0].get(field_id)
                    for field_id in group_ids} if members else {})
            for aggregate in query.aggregates:
                if aggregate.field is None:  # COUNT(*)
                    out[aggregate.output_id] = len(members)
                else:
                    values = [row.get(aggregate.field.id)
                              for row in members]
                    out[aggregate.output_id] = aggregate_value(
                        aggregate.func, values)
            full_rows.append(out)
            if query.order_by:
                key = tuple(out.get(field_id)
                            for field_id in query.output_ids)
                order_keys[key] = row_ordering_key(
                    out.get(field.id) for field in query.order_by)
        rows = full_rows
        if query.limit is not None:
            rows = full_rows[:query.limit]
        return ReferenceResult(query, rows, full_rows, order_keys)

    def _join_rows(self, query, params):
        """All full-path join ID tuples satisfying any OR branch."""
        path = query.key_path
        tuples = self.dataset.join_tuples(path)

        def satisfies(ids, branch):
            for condition in branch:
                position = self._position(path, condition.field)
                value = self._row(path, position, ids).get(
                    condition.field.id)
                if not condition.matches(value, condition.bind(params)):
                    return False
            return True

        return [ids for ids in tuples
                if any(satisfies(ids, branch)
                       for branch in query.disjuncts)]

    def _position(self, path, field):
        position = path.index_of(field.parent)
        if position < 0:
            raise ExecutionError(
                f"field {field.id} lies off the path {path}")
        return position

    def _row(self, path, position, ids):
        entity = path.entities[position]
        return self.dataset.rows[entity.name].get(ids[position], {})

    def _value(self, path, position, ids, field):
        return self._row(path, position, ids).get(field.id)
