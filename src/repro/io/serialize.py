"""JSON document format for models and workloads.

A complete application is one document::

    {
      "model": {
        "name": "hotel",
        "entities": [
          {"name": "Hotel", "count": 100,
           "id": "HotelID",
           "fields": [
             {"name": "HotelCity", "type": "string", "size": 12,
              "cardinality": 20},
             ...]},
          ...],
        "relationships": [
          {"from": "Hotel", "forward": "Rooms",
           "to": "Room", "reverse": "Hotel",
           "kind": "one_to_many"},
          ...]
      },
      "workload": {
        "mix": "default",
        "statements": [
          {"label": "q1", "statement": "SELECT ...",
           "weight": 2.0},
          {"label": "q2", "statement": "SELECT ...",
           "mixes": {"read": 3.0, "write": 0.5}},
          ...]
      }
    }

Field types map to the conceptual-model field classes; sizes and
cardinalities are optional (class defaults / entity count apply).
"""

from __future__ import annotations

import json

from repro.exceptions import ModelError, ParseError
from repro.model import (
    BooleanField,
    DateField,
    Entity,
    FloatField,
    IDField,
    IntegerField,
    Model,
    StringField,
)
from repro.workload import Workload

_FIELD_TYPES = {
    "string": StringField,
    "integer": IntegerField,
    "float": FloatField,
    "boolean": BooleanField,
    "date": DateField,
}

_TYPE_NAMES = {cls: name for name, cls in _FIELD_TYPES.items()}


# -- model ------------------------------------------------------------------


def model_to_dict(model):
    """Serialize a conceptual model to the document format."""
    entities = []
    relationships = []
    seen_edges = set()
    for entity in model.entities.values():
        id_field = entity.id_field
        fields = []
        for field in entity.data_fields:
            record = {"name": field.name,
                      "type": _TYPE_NAMES.get(type(field), "string"),
                      "size": field.size}
            if field._cardinality is not None:
                record["cardinality"] = field._cardinality
            fields.append(record)
        entities.append({
            "name": entity.name,
            "count": entity.count,
            "id": id_field.name if id_field else None,
            "fields": fields,
        })
        for key in entity.foreign_keys:
            if key.id in seen_edges:
                continue
            seen_edges.add(key.id)
            if key.reverse is not None:
                seen_edges.add(key.reverse.id)
            kind = {
                ("one", "one"): "one_to_one",
                ("many", "one"): "one_to_many",
                ("one", "many"): "many_to_one",
                ("many", "many"): "many_to_many",
            }[(key.relationship,
               key.reverse.relationship if key.reverse else "one")]
            record = {
                "from": entity.name, "forward": key.name,
                "to": key.entity.name,
                "reverse": key.reverse.name if key.reverse else None,
                "kind": kind,
            }
            if key._avg_fanout is not None:
                record["forward_fanout"] = key._avg_fanout
            if key.reverse is not None \
                    and key.reverse._avg_fanout is not None:
                record["reverse_fanout"] = key.reverse._avg_fanout
            if not key.total:
                record["forward_total"] = False
            if key.reverse is not None and not key.reverse.total:
                record["reverse_total"] = False
            relationships.append(record)
    return {"name": model.name, "entities": entities,
            "relationships": relationships}


def model_from_dict(document):
    """Rebuild a conceptual model from the document format."""
    try:
        model = Model(document.get("name", "model"))
        for spec in document["entities"]:
            entity = Entity(spec["name"], count=spec.get("count", 1))
            if spec.get("id"):
                entity.add_field(IDField(spec["id"]))
            for field_spec in spec.get("fields", []):
                field_type = _FIELD_TYPES.get(
                    field_spec.get("type", "string"))
                if field_type is None:
                    raise ModelError(
                        f"unknown field type {field_spec.get('type')!r}")
                kwargs = {}
                if "size" in field_spec:
                    kwargs["size"] = field_spec["size"]
                if "cardinality" in field_spec:
                    kwargs["cardinality"] = field_spec["cardinality"]
                entity.add_field(field_type(field_spec["name"],
                                            **kwargs))
            model.add_entity(entity)
        for spec in document.get("relationships", []):
            model.add_relationship(
                spec["from"], spec["forward"], spec["to"],
                spec["reverse"], kind=spec.get("kind", "one_to_many"),
                forward_fanout=spec.get("forward_fanout"),
                reverse_fanout=spec.get("reverse_fanout"),
                forward_total=spec.get("forward_total", True),
                reverse_total=spec.get("reverse_total", True))
        return model.validate()
    except KeyError as missing:
        raise ModelError(
            f"model document is missing key {missing}") from None


# -- workload ------------------------------------------------------------------


def workload_to_dict(workload):
    """Serialize a workload.

    Statements keep their source text verbatim when they were parsed
    from text; programmatically built statements are unparsed from the
    grammar's canonical rendering, which round-trips through
    :func:`repro.workload.parser.parse_statement`.
    """
    statements = []
    for label, statement in workload.statements.items():
        try:
            text = statement.text or statement.unparse()
        except NotImplementedError:
            raise ParseError(
                f"statement {label!r} has no source text to serialize")
        record = {"label": label, "statement": text}
        mixes = workload._weights[label]
        if set(mixes) == {Workload.DEFAULT_MIX}:
            record["weight"] = mixes[Workload.DEFAULT_MIX]
        else:
            record["mixes"] = dict(mixes)
        statements.append(record)
    return {"mix": workload.active_mix, "statements": statements}


def workload_from_dict(model, document):
    """Rebuild a workload over ``model`` from the document format."""
    workload = Workload(model, mix=document.get("mix"))
    try:
        for record in document["statements"]:
            workload.add_statement(
                record["statement"],
                weight=record.get("weight", 1.0),
                label=record.get("label"),
                mixes=record.get("mixes"))
    except KeyError as missing:
        raise ParseError(
            f"workload document is missing key {missing}") from None
    return workload


# -- applications ------------------------------------------------------------------


def load_application(path):
    """Load ``(model, workload)`` from a JSON application file."""
    with open(path) as handle:
        document = json.load(handle)
    model = model_from_dict(document["model"])
    workload = workload_from_dict(model, document.get(
        "workload", {"statements": []}))
    return model, workload


def dump_application(model, workload, path):
    """Write a model and workload to a JSON application file."""
    document = {"model": model_to_dict(model),
                "workload": workload_to_dict(workload)}
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
    return path


# -- document version checks -----------------------------------------------


def _check_format(document, supported, path, kind, required=False):
    """Reject documents whose declared version is not ``supported``.

    ``supported`` is the accepted format tag (e.g. "nose-explain/1").
    A document with no ``format`` field is accepted unless ``required``
    — explain/profile/run-report files predating the tag still load;
    the monitor format has carried its tag from day one, so there it is
    mandatory.
    """
    found = document.get("format")
    if found is None:
        if required:
            raise ValueError(
                f"{path} is not a {kind} document: missing 'format' "
                f"field (expected {supported!r})")
        return document
    if found != supported:
        raise ValueError(
            f"{path} declares unsupported {kind} document version "
            f"{found!r}; supported: {supported!r}")
    return document


# -- explain documents ----------------------------------------------------------


def dump_explain(document, path):
    """Write an explain document (or a recommendation) as stable JSON.

    Keys are sorted so two dumps of the same decision are byte-for-byte
    identical — the property ``nose-advisor diff`` and CI artifact
    comparison rely on.  Accepts either a prepared document dict or a
    :class:`~repro.optimizer.results.SchemaRecommendation`.
    """
    if not isinstance(document, dict):
        document = document.explain_document()
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_explain(path):
    """Load an explain document from a JSON file."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ParseError(f"{path} is not an explain document")
    from repro.explain.document import EXPLAIN_FORMAT
    return _check_format(document, EXPLAIN_FORMAT, path, "explain")


# -- profile documents ----------------------------------------------------------


def dump_profile(document, path):
    """Write a "nose-profile/1" accuracy report as stable JSON.

    Keys are sorted for diffability, matching :func:`dump_explain`.
    """
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_profile(path):
    """Load a profile document from a JSON file."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ParseError(f"{path} is not a profile document")
    from repro.profile.report import PROFILE_FORMAT
    return _check_format(document, PROFILE_FORMAT, path, "profile")


# -- telemetry run reports ------------------------------------------------------


def run_report_to_dict(report):
    """Serialize a :class:`repro.telemetry.RunReport`."""
    return report.as_dict()


def run_report_from_dict(document):
    """Rebuild a run report from its document form."""
    from repro.telemetry import RunReport
    return RunReport.from_dict(document)


def dump_run_report(report, path):
    """Write a telemetry run report as a diffable JSON file."""
    with open(path, "w") as handle:
        json.dump(run_report_to_dict(report), handle, indent=2)
        handle.write("\n")
    return path


def load_run_report(path):
    """Load a telemetry run report from a JSON file."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ParseError(f"{path} is not a run-report document")
    from repro.telemetry import RUN_REPORT_FORMAT
    _check_format(document, RUN_REPORT_FORMAT, path, "run-report")
    return run_report_from_dict(document)


# -- windows documents ------------------------------------------------------------


def dump_windows(document, path):
    """Write a "nose-windows/1" schedule document as stable JSON.

    Accepts either a prepared document dict or a
    :class:`~repro.windows.advisor.WindowedRecommendation`.  Keys are
    sorted and a trailing newline appended, so serial and ``jobs=N``
    windowed runs of the same schedule are byte-identical on disk.
    """
    if not isinstance(document, dict):
        document = document.document()
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_windows(path):
    """Load a windows document from a JSON file (format required)."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ParseError(f"{path} is not a windows document")
    from repro.windows.document import WINDOWS_FORMAT
    return _check_format(document, WINDOWS_FORMAT, path, "windows",
                         required=True)


# -- monitor documents -----------------------------------------------------------


def dump_monitor(document, path):
    """Write a "nose-monitor/1" drift document as stable JSON.

    Keys are sorted and a trailing newline appended, matching the
    other document dumpers, so serial and ``jobs=N`` monitored runs of
    the same traffic produce byte-identical files.
    """
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_monitor(path):
    """Load a monitor document from a JSON file (format required)."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ParseError(f"{path} is not a monitor document")
    from repro.monitor.document import MONITOR_FORMAT
    return _check_format(document, MONITOR_FORMAT, path, "monitor",
                         required=True)
