"""Serialization of models, workloads, and recommendations.

The original prototype loaded applications from workload definition
files; this package provides the equivalent: a stable JSON document
format for conceptual models and weighted workloads (round-trippable),
plus loaders used by the command line and the telemetry run-report
format.
"""

from repro.io.serialize import (
    dump_application,
    dump_explain,
    dump_monitor,
    dump_profile,
    dump_run_report,
    dump_windows,
    load_application,
    load_explain,
    load_monitor,
    load_profile,
    load_run_report,
    load_windows,
    model_from_dict,
    model_to_dict,
    run_report_from_dict,
    run_report_to_dict,
    workload_from_dict,
    workload_to_dict,
)

__all__ = [
    "dump_application",
    "dump_explain",
    "dump_monitor",
    "dump_profile",
    "dump_run_report",
    "dump_windows",
    "load_application",
    "load_explain",
    "load_monitor",
    "load_profile",
    "load_run_report",
    "load_windows",
    "model_from_dict",
    "model_to_dict",
    "run_report_from_dict",
    "run_report_to_dict",
    "workload_from_dict",
    "workload_to_dict",
]
