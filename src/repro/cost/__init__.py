"""Cost models estimating plan execution cost (tech-report companion).

The paper notes that "the exact cost model ... is not important to our
approach" and that richer models can be substituted without changing the
rest of the system; accordingly the model is pluggable.  Two are
provided: a Cassandra-style model charging per-request, per-partition and
per-row costs, and a simple request-counting model useful for tests.
"""

from repro.cost.calibrate import (
    CalibrationSample,
    calibrate_store,
    fit_cost_model,
    probe_store,
)
from repro.cost.cost_model import (
    CassandraCostModel,
    CostModel,
    HBaseCostModel,
    SimpleCostModel,
)

__all__ = [
    "CalibrationSample",
    "CassandraCostModel",
    "CostModel",
    "HBaseCostModel",
    "SimpleCostModel",
    "calibrate_store",
    "fit_cost_model",
    "probe_store",
]
