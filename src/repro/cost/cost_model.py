"""Plan cost estimation.

A cost model annotates every plan step with a scalar cost; plan cost is
the sum of its step costs.  Costs are abstract units chosen to resemble
milliseconds of client-observed latency, but only *relative* costs
matter to the optimizer.  The backend's latency simulator deliberately
uses different constants (see ``repro.backend.latency``) so benchmark
measurements are an independent yardstick for the advisor.
"""

from __future__ import annotations

import math

from repro.planner.steps import (
    AggregateStep,
    DeleteStep,
    FilterStep,
    IndexLookupStep,
    InsertStep,
    LimitStep,
    SortStep,
    UnionStep,
)


class CostModel:
    """Base cost model: dispatches per step type.

    Subclasses override the per-step methods; :meth:`cost_plan` and
    :meth:`cost_update_plan` annotate steps in place and return totals.

    Get-request costs are memoized per ``(index key, bindings,
    raw_rows)``: plan spaces share lookup steps heavily (the same column
    family is bound the same way in many plans), so the advisor's
    cost-calculation pass mostly hits the cache.  Mutating a model's
    cost constants after use requires :meth:`clear_cost_cache`.
    """

    def cost_step(self, step):
        if isinstance(step, IndexLookupStep):
            return self._memoized_lookup_cost(step)
        if isinstance(step, FilterStep):
            return self.filter_cost(step)
        if isinstance(step, SortStep):
            return self.sort_cost(step)
        if isinstance(step, LimitStep):
            return self.limit_cost(step)
        if isinstance(step, AggregateStep):
            return self.aggregate_cost(step)
        if isinstance(step, UnionStep):
            return self.union_cost(step)
        if isinstance(step, InsertStep):
            return self.insert_cost(step)
        if isinstance(step, DeleteStep):
            return self.delete_cost(step)
        raise TypeError(f"unknown plan step: {step!r}")

    def _memoized_lookup_cost(self, step):
        # lazy cache setup: subclasses are not required to call
        # super().__init__()
        cache = getattr(self, "_lookup_cost_cache", None)
        if cache is None:
            cache = self.__dict__["_lookup_cost_cache"] = {}
            self.__dict__.setdefault("cache_hits", 0)
            self.__dict__.setdefault("cache_misses", 0)
        # entry_size is a function of the index, so the key column
        # family + binding fan-out + raw row count determine the cost
        key = (step.index.key, step.bindings, step.raw_rows)
        try:
            cost = cache[key]
        except KeyError:
            cost = cache[key] = self.index_lookup_cost(step)
            self.cache_misses += 1
        else:
            self.cache_hits += 1
        return cost

    def cache_info(self):
        """``(hits, misses, entries)`` of the lookup-cost memo."""
        return (getattr(self, "cache_hits", 0),
                getattr(self, "cache_misses", 0),
                len(getattr(self, "_lookup_cost_cache", ()) or ()))

    def clear_cost_cache(self):
        """Drop memoized lookup costs (after changing cost constants)."""
        self.__dict__.pop("_lookup_cost_cache", None)
        self.__dict__["cache_hits"] = 0
        self.__dict__["cache_misses"] = 0

    def record_metrics(self, telemetry, prefix="cost"):
        """Publish the lookup-memo statistics to a telemetry sink.

        Lifetime totals go out as gauges (the advisor additionally
        counts per-pass deltas); called once per costing pass, never on
        the per-lookup hot path.
        """
        hits, misses, entries = self.cache_info()
        telemetry.gauge(f"{prefix}.cache_hits_total", hits)
        telemetry.gauge(f"{prefix}.cache_misses_total", misses)
        telemetry.gauge(f"{prefix}.memo_entries", entries)

    def cost_terms(self, step):
        """Named cost-model terms for one step, for plan explain output.

        The base implementation reports the physical quantities every
        model charges for — partitions contacted, rows read or written —
        so explain output is meaningful for any subclass; models with a
        richer cost structure override this to split the step cost into
        their own components.
        """
        if isinstance(step, IndexLookupStep):
            return {"partitions_contacted": max(step.bindings, 1.0),
                    "rows_read": max(step.raw_rows, 0.0)}
        if isinstance(step, InsertStep):
            return {"rows_written": max(step.cardinality, 0.0)}
        if isinstance(step, DeleteStep):
            return {"rows_deleted": max(step.cardinality, 0.0)}
        if isinstance(step, FilterStep):
            return {"rows_scanned": max(step.input_cardinality, 0.0)}
        if isinstance(step, SortStep):
            return {"rows_sorted": max(step.cardinality, 0.0)}
        if isinstance(step, AggregateStep):
            return {"rows_aggregated": max(step.input_cardinality, 0.0),
                    "groups_produced": max(step.cardinality, 0.0)}
        if isinstance(step, UnionStep):
            return {"rows_merged": max(step.input_cardinality, 0.0)}
        return {}

    def cost_plan(self, plan):
        """Annotate a query plan's steps; returns the plan cost."""
        total = 0.0
        for step in plan.steps:
            step.cost = self.cost_step(step)
            total += step.cost
        # refresh the plan's cached total (stale after re-costing with
        # different constants or another model)
        if hasattr(plan, "_cost"):
            plan._cost = total
        return total

    def cost_update_plan(self, update_plan):
        """Annotate an update plan (support plans included)."""
        for support_plan in update_plan.support_plans:
            self.cost_plan(support_plan)
        total = 0.0
        for step in update_plan.steps:
            step.cost = self.cost_step(step)
            total += step.cost
        if hasattr(update_plan, "_update_cost"):
            update_plan._update_cost = total
        return total

    # -- per-step hooks ------------------------------------------------------

    def index_lookup_cost(self, step):
        raise NotImplementedError

    def filter_cost(self, step):
        raise NotImplementedError

    def sort_cost(self, step):
        raise NotImplementedError

    def limit_cost(self, step):
        return 0.0

    def aggregate_cost(self, step):
        """Client-side grouping: charged like a per-row scan by default.

        Aggregation *shrinks* what crosses back to the application —
        only ``cardinality`` group rows survive — which is what makes
        grouped plans cheaper downstream; the fold itself costs one
        filter-scale pass over the input rows.
        """
        return self.filter_cost(step)

    def union_cost(self, step):
        """Client-side merge of branch streams: a per-row pass."""
        return self.filter_cost(step)

    def insert_cost(self, step):
        raise NotImplementedError

    def delete_cost(self, step):
        raise NotImplementedError


class CassandraCostModel(CostModel):
    """Cost model for a Cassandra-like extensible record store.

    A get request pays a per-request overhead (network round trip plus
    coordinator work), a per-partition seek, and a per-row scan/transfer
    cost proportional to the rows read from the store.  Client-side
    filtering and sorting are orders of magnitude cheaper per row but not
    free.  Puts and deletes pay per-row write costs.

    The default constants were calibrated so that typical point queries
    land around a millisecond, matching the scale (not the absolute
    values) of the paper's testbed measurements.
    """

    def __init__(self, request_cost=0.5, partition_cost=0.2,
                 row_cost=0.01, row_byte_cost=2e-5, filter_row_cost=5e-4,
                 sort_row_cost=2e-3, put_cost=0.15, delete_cost=0.1):
        self.request_cost = request_cost
        self.partition_cost = partition_cost
        self.row_cost = row_cost
        self.row_byte_cost = row_byte_cost
        self.filter_row_cost = filter_row_cost
        self.sort_row_cost = sort_row_cost
        self.put_cost = put_cost
        self.delete_row_cost = delete_cost

    def index_lookup_cost(self, step):
        requests = max(step.bindings, 1.0)
        rows = max(step.raw_rows, 0.0)
        row_bytes = step.index.entry_size
        return (requests * (self.request_cost + self.partition_cost)
                + rows * (self.row_cost + row_bytes * self.row_byte_cost))

    def cost_terms(self, step):
        """Split the step cost into this model's components.

        Lookups separate the per-request overhead (round trip plus
        partition seek) from the row scan/transfer share — the split
        that tells a designer whether a plan is request-bound or
        transfer-bound.
        """
        terms = super().cost_terms(step)
        if isinstance(step, IndexLookupStep):
            requests = max(step.bindings, 1.0)
            rows = max(step.raw_rows, 0.0)
            row_bytes = step.index.entry_size
            terms["request_cost"] = requests * (self.request_cost
                                                + self.partition_cost)
            terms["transfer_cost"] = rows * (
                self.row_cost + row_bytes * self.row_byte_cost)
        return terms

    def filter_cost(self, step):
        return max(step.input_cardinality, 0.0) * self.filter_row_cost

    def sort_cost(self, step):
        rows = max(step.cardinality, 1.0)
        return rows * max(math.log2(rows), 1.0) * self.sort_row_cost

    def insert_cost(self, step):
        return (self.request_cost
                + max(step.cardinality, 0.0) * self.put_cost)

    def delete_cost(self, step):
        return (self.request_cost
                + max(step.cardinality, 0.0) * self.delete_row_cost)


class HBaseCostModel(CassandraCostModel):
    """Cost model for an HBase-style extensible record store.

    The paper (§IX) argues the approach ports to other extensible
    record stores with "minimal effort ... changing the cost model and
    the physical representation".  HBase differs from Cassandra in the
    constants that matter to schema choice: region lookups make the
    per-request overhead higher (no coordinator-side token ring), while
    sequential scans over a region are comparatively cheap, and writes
    go through the WAL+memstore path, making puts cheaper relative to
    reads.  The net effect is a stronger preference for few, larger
    gets — i.e. more denormalization at the same update rate.
    """

    def __init__(self, request_cost=1.2, partition_cost=0.3,
                 row_cost=0.004, row_byte_cost=2e-5, filter_row_cost=5e-4,
                 sort_row_cost=2e-3, put_cost=0.08, delete_cost=0.08):
        super().__init__(request_cost=request_cost,
                         partition_cost=partition_cost,
                         row_cost=row_cost,
                         row_byte_cost=row_byte_cost,
                         filter_row_cost=filter_row_cost,
                         sort_row_cost=sort_row_cost,
                         put_cost=put_cost,
                         delete_cost=delete_cost)


class SimpleCostModel(CostModel):
    """Counts record-store requests only.

    Every get pattern costs its number of requests and every put/delete
    one request per row; client-side work is free.  Useful for tests
    where exact constants would obscure intent, and as the paper's
    observation that the system is agnostic to the cost model.
    """

    def index_lookup_cost(self, step):
        return max(step.bindings, 1.0)

    def filter_cost(self, step):
        return 0.0

    def sort_cost(self, step):
        return 0.0

    def insert_cost(self, step):
        return max(step.cardinality, 1.0)

    def delete_cost(self, step):
        return max(step.cardinality, 1.0)
