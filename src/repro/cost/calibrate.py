"""Fitting cost-model constants to measured store behaviour.

The paper's cost model used constants calibrated against measurements
of the target Cassandra installation.  This module reproduces that
step: probe a record store with gets/puts of varying shapes, collect
(requests, rows, bytes) -> latency samples, and fit the
:class:`~repro.cost.CassandraCostModel` constants by least squares.

Pointing the probe at the bundled simulator recovers the latency
model's constants exactly (it is linear by construction) — and the same
machinery would calibrate against a real cluster by timing the
equivalent operations.
"""

from __future__ import annotations

import random

import numpy

from repro.cost.cost_model import CassandraCostModel
from repro.exceptions import ExecutionError
from repro.indexes import Index
from repro.model import Entity, IDField, IntegerField, Model, StringField


class CalibrationSample:
    """One measured operation: its shape and observed latency (ms)."""

    __slots__ = ("kind", "requests", "rows", "row_bytes", "time_ms")

    def __init__(self, kind, requests, rows, row_bytes, time_ms):
        if kind not in ("get", "put", "delete"):
            raise ExecutionError(f"unknown sample kind {kind!r}")
        self.kind = kind
        self.requests = requests
        self.rows = rows
        self.row_bytes = row_bytes
        self.time_ms = time_ms

    def __repr__(self):
        return (f"CalibrationSample({self.kind}, requests="
                f"{self.requests}, rows={self.rows}, "
                f"time_ms={self.time_ms:.4f})")


def _fit_nonnegative(design, observed):
    """Least-squares fit with coefficients clamped to be nonnegative."""
    coefficients, _residual, _rank, _sv = numpy.linalg.lstsq(
        design, observed, rcond=None)
    return numpy.clip(coefficients, 0.0, None)


def fit_cost_model(samples, partition_share=0.5):
    """Fit a :class:`CassandraCostModel` from calibration samples.

    The per-request overhead recovered from get samples is split
    between the model's ``request_cost`` and ``partition_cost`` by
    ``partition_share`` (the two are not separable from single-partition
    probes; only their sum affects plan costs).
    """
    gets = [sample for sample in samples if sample.kind == "get"]
    puts = [sample for sample in samples if sample.kind == "put"]
    deletes = [sample for sample in samples if sample.kind == "delete"]
    if len(gets) < 3:
        raise ExecutionError(
            "calibration needs at least three get samples")
    design = numpy.array([[sample.requests, sample.rows,
                           sample.rows * sample.row_bytes]
                          for sample in gets])
    observed = numpy.array([sample.time_ms for sample in gets])
    per_request, per_row, per_byte = _fit_nonnegative(design, observed)
    arguments = {
        "request_cost": per_request * (1.0 - partition_share),
        "partition_cost": per_request * partition_share,
        "row_cost": per_row,
        "row_byte_cost": per_byte,
    }
    if puts:
        design = numpy.array([[sample.requests, sample.rows]
                              for sample in puts])
        observed = numpy.array([sample.time_ms for sample in puts])
        _base, per_put_row = _fit_nonnegative(design, observed)
        arguments["put_cost"] = per_put_row
    if deletes:
        design = numpy.array([[sample.requests, sample.rows]
                              for sample in deletes])
        observed = numpy.array([sample.time_ms for sample in deletes])
        _base, per_delete_row = _fit_nonnegative(design, observed)
        arguments["delete_cost"] = per_delete_row
    return CassandraCostModel(**arguments)


def _probe_index(value_size):
    """A synthetic column family for probing: int partitions, int
    clustering, one string value of the requested size."""
    model = Model("calibration")
    entity = Entity("Probe", count=1_000_000)
    entity.add_fields(IDField("ProbeID"),
                      IntegerField("Partition"),
                      IntegerField("Position"),
                      StringField("Payload", size=value_size))
    model.add_entity(entity)
    return Index((entity["Partition"],),
                 (entity["Position"], entity["ProbeID"]),
                 (entity["Payload"],), model.path(["Probe"]))


def probe_store(store, partition_sizes=(1, 10, 100, 1000),
                value_sizes=(8, 64, 256), batches=(1, 10, 100), seed=17):
    """Measure a store with synthetic operations; returns samples.

    For each (partition size, value size) combination, one partition is
    populated and fully read; put/delete batches of varying sizes are
    also timed.  Works against any object with the
    :class:`~repro.backend.store.Store` interface.
    """
    rng = random.Random(seed)
    samples = []
    for value_size in value_sizes:
        index = _probe_index(value_size)
        column_family = store.create(index)
        row_bytes = index.entry_size
        for partition, size in enumerate(partition_sizes):
            rows = [{"Probe.Partition": partition,
                     "Probe.Position": position,
                     "Probe.ProbeID": rng.randrange(10 ** 9),
                     "Probe.Payload": "x" * value_size}
                    for position in range(size)]
            column_family.put_many(rows, charge=False)
            before = store.metrics.simulated_ms
            returned = column_family.get((partition,))
            samples.append(CalibrationSample(
                "get", 1, len(returned), row_bytes,
                store.metrics.simulated_ms - before))
        for batch in batches:
            rows = [{"Probe.Partition": 10_000 + batch,
                     "Probe.Position": position,
                     "Probe.ProbeID": position,
                     "Probe.Payload": "x" * value_size}
                    for position in range(batch)]
            before = store.metrics.simulated_ms
            column_family.put_many(rows)
            samples.append(CalibrationSample(
                "put", 1, batch, row_bytes,
                store.metrics.simulated_ms - before))
            before = store.metrics.simulated_ms
            column_family.delete_many(rows)
            samples.append(CalibrationSample(
                "delete", 1, batch, row_bytes,
                store.metrics.simulated_ms - before))
        store.drop(index)
    return samples


def calibrate_store(store, **probe_options):
    """Probe a store and fit a cost model in one call."""
    return fit_cost_model(probe_store(store, **probe_options))
