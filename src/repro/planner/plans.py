"""Plan containers: one implementation strategy for one statement."""

from __future__ import annotations

from repro.planner.steps import DeleteStep, IndexLookupStep, InsertStep


class PlanSpace(list):
    """The enumerated plans for one query, with provenance.

    Behaves exactly like the plain list the planner used to return, but
    additionally records whether the depth-first enumeration was cut
    short by the planner's ``max_plans`` cap (``truncated``) — a capped
    space must never be mistaken for an exhaustive one.
    """

    def __init__(self, plans=(), query=None, truncated=False):
        super().__init__(plans)
        self.query = query
        #: True when ``max_plans`` stopped the DFS with branches left
        self.truncated = truncated


class QueryPlan:
    """A sequence of primitive steps answering one query.

    Plans are comparable by cost once a cost model has annotated their
    steps; ``indexes`` is the set of column families the plan requires,
    which is what the optimizer's BIP links plan choice to schema choice
    with.
    """

    def __init__(self, query, steps):
        self.query = query
        self.steps = tuple(steps)
        #: total cost stamped by the last cost-model pass (the steps are
        #: immutable, so dominance pruning and BIP construction read the
        #: cached scalar instead of re-summing step costs per access)
        self._cost = None
        self._indexes = None
        self._signature = None

    @property
    def indexes(self):
        """Distinct column families used, in first-use order."""
        if self._indexes is None:
            seen = {}
            for step in self.steps:
                if isinstance(step, IndexLookupStep):
                    seen.setdefault(step.index.key, step.index)
            self._indexes = tuple(seen.values())
        return self._indexes

    @property
    def lookup_steps(self):
        return tuple(s for s in self.steps
                     if isinstance(s, IndexLookupStep))

    @property
    def cost(self):
        """Total plan cost; requires a prior cost-model pass."""
        if self._cost is not None:
            return self._cost
        total = 0.0
        for step in self.steps:
            if step.cost is None:
                raise ValueError(
                    f"step {step!r} has no cost; run a cost model first")
            total += step.cost
        self._cost = total
        return total

    @property
    def cardinality(self):
        """Estimated number of result rows."""
        return self.steps[-1].cardinality if self.steps else 0.0

    @property
    def signature(self):
        """Stable identity for de-duplication within a plan space."""
        if self._signature is None:
            parts = []
            for step in self.steps:
                if isinstance(step, IndexLookupStep):
                    parts.append(f"L:{step.index.key}")
                else:
                    parts.append(type(step).__name__[0])
            self._signature = "|".join(parts)
        return self._signature

    def describe(self):
        lines = [f"Plan for {self.query.label or self.query}:"]
        lines.extend(f"  {i + 1}. {step.describe()}"
                     for i, step in enumerate(self.steps))
        return "\n".join(lines)

    def __repr__(self):
        return f"QueryPlan({self.signature})"


class UnionPlan(QueryPlan):
    """A plan answering a disjunctive query as a union of branch plans.

    One complete :class:`QueryPlan` per OR branch, followed by tail
    steps that merge the branch streams (and sort/aggregate/limit the
    merged result).  ``steps`` concatenates every branch's steps with
    the tail, so cost models, dominance pruning and the BIP see one
    flat step sequence; the executor instead walks ``branch_plans``
    (each with its branch query's predicate context) and then
    ``tail_steps``.
    """

    def __init__(self, query, branch_plans, tail_steps):
        self.branch_plans = tuple(branch_plans)
        self.tail_steps = tuple(tail_steps)
        steps = [step for plan in self.branch_plans for step in plan.steps]
        steps.extend(tail_steps)
        super().__init__(query, steps)

    @property
    def signature(self):
        """Branch signatures in parallel, then the tail skeleton."""
        if self._signature is None:
            branches = ")U(".join(plan.signature
                                  for plan in self.branch_plans)
            parts = [f"({branches})"]
            parts.extend(type(step).__name__[0]
                         for step in self.tail_steps)
            self._signature = "|".join(parts)
        return self._signature

    def describe(self):
        lines = [f"Union plan for {self.query.label or self.query}:"]
        for number, plan in enumerate(self.branch_plans):
            lines.append(f"  branch {number}:")
            lines.extend(f"    {step.describe()}" for step in plan.steps)
        lines.extend(f"  {step.describe()}" for step in self.tail_steps)
        return "\n".join(lines)

    def __repr__(self):
        return f"UnionPlan({self.signature})"


class UpdatePlan:
    """Maintenance of one column family under one update statement (§VI-B).

    Consists of the support query plans that locate the affected rows,
    followed by delete and/or insert steps against the maintained column
    family.  The optimizer charges ``cost`` only when the column family
    is part of the recommended schema.
    """

    def __init__(self, update, index, support_plans, steps,
                 truncated_support=()):
        self.update = update
        self.index = index
        self.support_plans = tuple(support_plans)
        self.steps = tuple(steps)
        #: support queries whose plan spaces hit the planner cap
        self.truncated_support = tuple(truncated_support)
        #: update-step cost stamped by the last cost-model pass
        self._update_cost = None
        self._by_query = None

    @property
    def update_steps(self):
        return tuple(s for s in self.steps
                     if isinstance(s, (InsertStep, DeleteStep)))

    @property
    def update_cost(self):
        """Cost of the put/delete work alone (C'_mn in the paper's BIP)."""
        if self._update_cost is not None:
            return self._update_cost
        total = 0.0
        for step in self.steps:
            if step.cost is None:
                raise ValueError(
                    f"step {step!r} has no cost; run a cost model first")
            total += step.cost
        self._update_cost = total
        return total

    @property
    def cost(self):
        """Update cost plus the cost of the cheapest support-query plans.

        Used by reporting and the brute-force optimizer; the BIP instead
        lets the solver choose support-query plans jointly.
        """
        total = self.update_cost
        for plans in self.support_plans_by_query.values():
            total += min(plan.cost for plan in plans)
        return total

    @property
    def support_plans_by_query(self):
        """Support-query plan spaces, grouped per support query.

        Cached — the plan tuple is immutable and the grouping is read
        repeatedly by the BIP builder and the explain renderers.
        """
        if self._by_query is None:
            grouped = {}
            for plan in self.support_plans:
                grouped.setdefault(plan.query, []).append(plan)
            self._by_query = grouped
        return self._by_query

    def describe(self):
        label = self.update.label or str(self.update)
        lines = [f"Maintenance of {self.index.key} under {label}:"]
        for query, plans in self.support_plans_by_query.items():
            best = min(plans, key=lambda p: p.cost if p.steps
                       and p.steps[0].cost is not None else 0)
            lines.append(f"  support: {query.text or query}")
            lines.extend(f"    {step.describe()}" for step in best.steps)
        lines.extend(f"  {step.describe()}" for step in self.update_steps)
        return "\n".join(lines)

    def __repr__(self):
        return (f"UpdatePlan({self.update.label or type(self.update).__name__}"
                f" on {self.index.key})")
