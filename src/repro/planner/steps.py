"""Primitive plan operations of the application model (paper §IV-B).

Only :class:`IndexLookupStep` (and the put/delete steps of update plans)
touch the record store; filtering, sorting and limiting happen client
side in the application, exactly as in the paper's application model.
Each step carries the cardinality estimates the cost model consumes.
"""

from __future__ import annotations


class PlanStep:
    """Base class for plan operations.

    ``cardinality`` is the estimated number of rows flowing *out* of the
    step; ``cost`` is filled in by a cost model during the cost
    -calculation pass (kept separate from planning so the advisor can
    report the paper's Fig 13 runtime decomposition).
    """

    def __init__(self, cardinality):
        self.cardinality = cardinality
        self.cost = None

    def describe(self):
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}({self.describe()})"


class IndexLookupStep(PlanStep):
    """One get request pattern against a column family.

    ``bindings`` is the number of get requests issued (one per row of the
    previous step, or one for the initial parameter binding);
    ``raw_rows`` the total rows fetched before any client-side filtering
    applied at later steps.  ``eq_fields`` are bound exactly (partition
    key plus a clustering-key prefix), ``range_field`` by the query's
    range predicate when the clustering order supports it.
    """

    def __init__(self, index, bindings, raw_rows, cardinality,
                 eq_fields=(), range_field=None, order_served=False,
                 is_fetch=False):
        super().__init__(cardinality)
        self.index = index
        self.bindings = bindings
        self.raw_rows = raw_rows
        self.eq_fields = tuple(eq_fields)
        self.range_field = range_field
        self.order_served = order_served
        #: True for point lookups that only widen rows (no path advance)
        self.is_fetch = is_fetch

    def describe(self):
        kind = "fetch" if self.is_fetch else "lookup"
        bound = ", ".join(f.id for f in self.eq_fields)
        if self.range_field is not None:
            bound += f", range {self.range_field.id}"
        return (f"{kind} {self.index.key} by [{bound}] "
                f"x{self.bindings:.3g} -> {self.cardinality:.3g} rows")


class FilterStep(PlanStep):
    """Client-side predicate evaluation on already-fetched rows."""

    def __init__(self, conditions, input_cardinality, cardinality):
        super().__init__(cardinality)
        self.conditions = tuple(conditions)
        self.input_cardinality = input_cardinality

    def describe(self):
        preds = " AND ".join(str(c) for c in self.conditions)
        return f"filter {preds} -> {self.cardinality:.3g} rows"


class SortStep(PlanStep):
    """Client-side sort of the result rows."""

    def __init__(self, fields, cardinality):
        super().__init__(cardinality)
        self.fields = tuple(fields)

    def describe(self):
        names = ", ".join(f.id for f in self.fields)
        return f"sort by {names} ({self.cardinality:.3g} rows)"


class UnionStep(PlanStep):
    """Client-side merge of the OR-branch result streams.

    Concatenates the branch outputs; duplicate elimination happens in
    the application's final projection (the same multiset-dedup every
    query result goes through), so the step itself just merges.
    """

    def __init__(self, input_cardinality, cardinality):
        super().__init__(cardinality)
        self.input_cardinality = input_cardinality

    def describe(self):
        return (f"union {self.input_cardinality:.3g} branch rows "
                f"-> {self.cardinality:.3g} rows")


class AggregateStep(PlanStep):
    """Client-side grouping and aggregate folding.

    Deduplicates to distinct target rows, groups by ``group_by`` (one
    global group when empty) and folds the ``aggregates``; output
    cardinality is the expected number of groups.
    """

    def __init__(self, group_by, aggregates, input_cardinality,
                 cardinality):
        super().__init__(cardinality)
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        self.input_cardinality = input_cardinality

    def describe(self):
        folds = ", ".join(str(a) for a in self.aggregates)
        if self.group_by:
            keys = ", ".join(f.id for f in self.group_by)
            return (f"aggregate {folds} by [{keys}] "
                    f"-> {self.cardinality:.3g} groups")
        return f"aggregate {folds} -> 1 row"


class LimitStep(PlanStep):
    """Truncate the result to the query's LIMIT."""

    def __init__(self, limit, input_cardinality):
        super().__init__(min(float(limit), input_cardinality))
        self.limit = limit
        self.input_cardinality = input_cardinality

    def describe(self):
        return f"limit {self.limit}"


class InsertStep(PlanStep):
    """Insert (put) rows into a column family during update execution."""

    def __init__(self, index, cardinality):
        super().__init__(cardinality)
        self.index = index

    def describe(self):
        return f"insert {self.cardinality:.3g} rows into {self.index.key}"


class DeleteStep(PlanStep):
    """Remove rows from a column family during update execution."""

    def __init__(self, index, cardinality):
        super().__init__(cardinality)
        self.index = index

    def describe(self):
        return f"delete {self.cardinality:.3g} rows from {self.index.key}"
