"""Plan-space enumeration for queries (paper §IV-C).

A plan answers a query by walking the query's path *backwards* — from the
far end (where the anchoring equality predicates usually live) toward the
target entity — through a chain of get requests, exactly mirroring the
prefix/remainder decomposition of Fig 5.  Each get advances the frontier
across one contiguous path segment using a column family defined over
that segment; predicates are served inside the get (partition key and
clustering-prefix binding), applied as client-side filters when the
column family stores the attribute, or resolved through an extra point
lookup ("fetch") on the attribute's entity followed by a filter — the
CF2/CF5 pattern of Fig 6.

The planner enumerates every such chain over a pool of candidate column
families and returns the resulting plan space.  Costs are *not* assigned
here; the advisor runs a separate cost-calculation pass so the runtime
decomposition of Fig 13 can be reported.
"""

from __future__ import annotations

import hashlib
import itertools

import numpy as np

from repro import telemetry
from repro.exceptions import PlanningError
from repro.parallel import parallel_map
from repro.planner.plans import PlanSpace, QueryPlan, UnionPlan
from repro.planner.steps import (
    AggregateStep,
    FilterStep,
    IndexLookupStep,
    LimitStep,
    SortStep,
    UnionStep,
)


class _Binding:
    """How one column family serves one get in a plan: which predicates
    bind the partition/clustering keys, which become client filters, and
    which are left pending for a later fetch.

    ``binding_factor`` multiplies the get-request count: an ``IN``
    predicate bound to a key column turns one get into a k-way
    multi-get (one request per list member combination)."""

    __slots__ = ("eq_fields", "range_condition", "filters", "pending",
                 "served", "per_binding_raw", "order_served",
                 "binding_factor")

    def __init__(self, eq_fields, range_condition, filters, pending,
                 served, per_binding_raw, order_served, binding_factor):
        self.eq_fields = eq_fields
        self.range_condition = range_condition
        self.filters = filters
        self.pending = pending
        self.served = served
        self.per_binding_raw = per_binding_raw
        self.order_served = order_served
        self.binding_factor = binding_factor


class QueryPlanner:
    """Enumerates the space of implementation plans for queries.

    ``indexes`` is the candidate pool (or a fixed schema, when planning
    against a user-supplied design).  ``max_plans`` bounds the plan space
    per query to keep the optimizer's program tractable.
    """

    def __init__(self, model, indexes, max_plans=500):
        self.model = model
        self.pool = list(dict.fromkeys(indexes))
        self.max_plans = max_plans
        self._segments = {}
        self._fetches = {}
        for index in self.pool:
            for segment_key, single in _servable_segments(index):
                self._segments.setdefault(segment_key, []).append(index)
                if single is not None \
                        and index.hash_fields == (single.id_field,):
                    self._fetches.setdefault(single.name,
                                             []).append(index)
        # -- pool bitset layout (vectorized membership checks) ---------
        # one row per candidate, columns ordered by candidate key; a
        # path-segment membership mask per registered segment signature
        # lets relevant_pool_key() union pool subsets as boolean ORs
        # instead of Python set unions, and the per-entity fetch
        # matrices below answer "which point-lookup candidates cover
        # these fields" as one vectorized row scan
        keys = sorted(index.key for index in self.pool)
        self._sorted_keys = keys
        position = {key: column for column, key in enumerate(keys)}
        self._segment_masks = {}
        for signature, members in self._segments.items():
            mask = np.zeros(len(keys), dtype=bool)
            for index in members:
                mask[position[index.key]] = True
            self._segment_masks[signature] = mask
        #: entity name -> (options, field-id columns, bool matrix); one
        #: row per fetch candidate, one column per stored field id
        self._fetch_matrices = {}
        #: (entity name, frozenset of field ids) -> covering candidates
        self._fetch_memo = {}
        #: reversed-path signature -> relevant-pool fingerprint; the
        #: relevant subset is a function of the path alone
        self._pool_key_memo = {}
        #: candidate key -> expected entries, stable for this planner's
        #: lifetime (one prepare); entity counts only change between
        #: prepares (Dataset.sync_counts), never inside one
        self._entries_memo = {}

    # -- public API ---------------------------------------------------------

    def plans_for(self, query, require=True, max_plans=None):
        """All plans for ``query`` over the pool, deduplicated.

        Raises :class:`PlanningError` when ``require`` is set and no plan
        exists (i.e. the pool cannot answer the query).  ``max_plans``
        overrides the planner-wide cap for this query.  The returned
        :class:`~repro.planner.plans.PlanSpace` records whether the cap
        cut the enumeration short (``.truncated``).

        Disjunctive queries are planned as a plan-space union: every
        combination of per-branch plans becomes one
        :class:`~repro.planner.plans.UnionPlan` merging the branch
        streams client side.
        """
        if getattr(query, "is_disjunctive", False):
            return self._union_plans(query, require,
                                     max_plans or self.max_plans)
        rpath = query.key_path.reverse() if len(query.key_path) > 1 \
            else query.key_path
        plans = {}
        state = _PlannerState(self, query, rpath, plans,
                              max_plans or self.max_plans)
        state.advance(-1, (), 1.0, frozenset(), frozenset(), False)
        if require and not plans:
            raise PlanningError(
                f"no plan found for query: {query.text or query!r}")
        active = telemetry.current()
        if active.enabled:
            active.count("planner.plans_generated", len(plans))
            active.observe("planner.plans_per_query", len(plans))
            if state.truncated:
                active.count("planner.truncated_spaces")
        return PlanSpace(plans.values(), query=query,
                         truncated=state.truncated)

    def _union_plans(self, query, require, max_plans):
        """Plan a disjunctive query as a union over its branch spaces.

        Each branch (a conjunctive query) is planned independently;
        every combination of branch plans yields one
        :class:`~repro.planner.plans.UnionPlan` whose tail merges the
        branch streams and applies the query's sort, aggregation and
        limit client side (a union can never ride a single clustering
        order, so ORDER BY always sorts the merged rows).
        """
        spaces = [self.plans_for(branch, require=require,
                                 max_plans=max_plans)
                  for branch in query.branch_queries]
        truncated = any(space.truncated for space in spaces)
        if any(not space for space in spaces):
            return PlanSpace((), query=query, truncated=truncated)
        plans = {}
        for combo in itertools.product(*spaces):
            if len(plans) >= max_plans:
                truncated = True
                break
            plan = self._union_plan(query, combo)
            plans.setdefault(plan.signature, plan)
        active = telemetry.current()
        if active.enabled:
            active.count("planner.union_plans", len(plans))
        return PlanSpace(plans.values(), query=query, truncated=truncated)

    def _union_plan(self, query, branch_plans):
        merged_in = sum(plan.cardinality for plan in branch_plans)
        out = min(max(merged_in, 0.0), query.matching_join_rows)
        tail = [UnionStep(merged_in, out)]
        if query.order_by:
            tail.append(SortStep(query.order_by, out))
        if getattr(query, "is_aggregate", False):
            groups = min(query.group_rows, max(out, 1.0))
            tail.append(AggregateStep(query.group_by, query.aggregates,
                                      out, groups))
            out = groups
        if query.limit is not None:
            tail.append(LimitStep(query.limit, out))
        return UnionPlan(query, branch_plans, tail)

    def plan_all(self, queries, require=True, jobs=None):
        """Plan spaces for many queries: ``{query: PlanSpace}``.

        Per-query enumeration is independent; ``jobs`` fans it out over
        a thread pool (input order, hence result determinism, is kept).
        """
        queries = list(queries)
        spaces = parallel_map(
            lambda query: self.plans_for(query, require=require),
            queries, jobs=jobs)
        return dict(zip(queries, spaces))

    def best_plan(self, query, cost_model):
        """Cost all plans and return the cheapest one."""
        plans = self.plans_for(query)
        for plan in plans:
            cost_model.cost_plan(plan)
        return min(plans, key=lambda p: p.cost)

    # -- pool access ----------------------------------------------------------

    def segment_indexes(self, segment):
        """Pool indexes defined over exactly this path segment."""
        return self._segments.get(segment.signature, [])

    def entries_of(self, index):
        """``index.entries``, memoized for this planner's lifetime.

        The expected row count walks the index path's cardinalities on
        every access; the planner reads it once per (candidate,
        predicate) binding attempt, so the walk is done once per
        candidate instead.
        """
        try:
            return self._entries_memo[index.key]
        except KeyError:
            entries = self._entries_memo[index.key] = index.entries
            return entries

    def relevant_pool_key(self, query):
        """Fingerprint of the pool subset that can serve ``query``.

        Plan enumeration only ever consults indexes registered under a
        contiguous sub-path of the query's (reversed) path — segment
        lookups directly, fetch lookups through the single-entity
        segments of on-path entities — so the plan space is a pure
        function of the query's structure and this subset.  Two pools
        with the same fingerprint for a query therefore yield identical
        plan spaces, which is what lets the advisor reuse per-statement
        plan artifacts across pool changes elsewhere in the workload.

        The subset depends on the query's *path* only, so fingerprints
        are memoized per reversed-path signature, and the subset union
        is a boolean OR over the precomputed segment membership masks
        (one row per candidate) rather than a Python set union.
        """
        rpath = query.key_path.reverse() if len(query.key_path) > 1 \
            else query.key_path
        memo_key = rpath.signature
        cached = self._pool_key_memo.get(memo_key)
        if cached is not None:
            return cached
        length = len(rpath)
        signatures = set()
        for start in range(length):
            for end in range(start, length):
                signatures.add(rpath[start:end + 1].signature)
        mask = np.zeros(len(self._sorted_keys), dtype=bool)
        for signature in signatures:
            member = self._segment_masks.get(signature)
            if member is not None:
                mask |= member
        keys = [key for key, hit in zip(self._sorted_keys, mask) if hit]
        payload = "\n".join(keys).encode("utf-8")
        fingerprint = hashlib.sha256(payload).hexdigest()[:16]
        self._pool_key_memo[memo_key] = fingerprint
        return fingerprint

    def fetch_indexes(self, entity, fields):
        """Point-lookup indexes ``[E.id][][...]`` covering ``fields``.

        Coverage is answered from a per-entity bitset matrix — one row
        per fetch candidate, one column per stored field id — and
        memoized per (entity, field-id set): support planning asks the
        same questions for every (update, column family) pair, millions
        of times on large pools.
        """
        ids = frozenset(f.id for f in fields)
        memo_key = (entity.name, ids)
        cached = self._fetch_memo.get(memo_key)
        if cached is not None:
            return cached
        entry = self._fetch_matrices.get(entity.name)
        if entry is None:
            options = self._fetches.get(entity.name, [])
            columns = {}
            for option in options:
                for field_id in option.all_field_ids:
                    columns.setdefault(field_id, len(columns))
            matrix = np.zeros((len(options), len(columns)), dtype=bool)
            for row, option in enumerate(options):
                for field_id in option.all_field_ids:
                    matrix[row, columns[field_id]] = True
            entry = (options, columns, matrix)
            self._fetch_matrices[entity.name] = entry
        options, columns, matrix = entry
        try:
            wanted = [columns[field_id] for field_id in ids]
        except KeyError:
            # some requested field is stored by no fetch candidate
            self._fetch_memo[memo_key] = []
            return []
        if options:
            hits = matrix[:, wanted].all(axis=1)
            result = [option for option, hit in zip(options, hits) if hit]
        else:
            result = []
        self._fetch_memo[memo_key] = result
        return result


def _servable_segments(index):
    """Path segments an index can serve without changing the row set.

    An index always serves its own path (either orientation).  It can
    additionally serve a contiguous sub-path when every trimmed edge,
    oriented away from the kept segment, is a *total* to-one
    relationship — the paper's "possibly larger" column families.
    To-one keeps the join from duplicating rows; totality (mandatory
    participation) keeps it from dropping them: over a partial edge the
    extended join loses rows that lack the relationship, which the
    differential oracle observes as result rows missing from plans that
    read the larger column family.  Yields ``(path signature,
    entity-or-None)`` pairs, the entity being set for single-entity
    segments (fetch candidates).
    """
    path = index.path
    length = len(path)
    produced = set()
    for start in range(length):
        if any(key.reverse is None or key.reverse.relationship != "one"
               or not key.reverse.total
               for key in path.keys[:start]):
            continue
        for end in range(length - 1, start - 1, -1):
            if any(key.relationship != "one" or not key.total
                   for key in path.keys[end:]):
                continue
            signature = path[start:end + 1].signature
            if signature in produced:
                continue
            produced.add(signature)
            single = path.entities[start] if start == end else None
            yield signature, single


class _PlannerState:
    """Depth-first enumeration of lookup chains for one query."""

    def __init__(self, planner, query, rpath, plans, max_plans):
        self.planner = planner
        self.query = query
        self.rpath = rpath
        self.plans = plans
        self.max_plans = max_plans
        #: set when the cap stopped the DFS with work left (an
        #: unexplored branch may only hold duplicate plans, so this is
        #: a conservative "may be incomplete", never a false negative)
        self.truncated = False
        self.length = len(rpath)
        self.order_by = tuple(query.order_by) \
            if hasattr(query, "order_by") else ()
        # conditions assigned to the first reversed-path position covering
        # their entity
        self.conditions_at = {}
        for condition in query.conditions:
            position = rpath.index_of(condition.field.parent)
            self.conditions_at.setdefault(position, []).append(condition)

    # -- recursion ------------------------------------------------------------

    def advance(self, position, steps, cardinality, consumed, available,
                order_served):
        """Extend the chain from frontier ``position`` (-1 = nothing yet)."""
        if len(self.plans) >= self.max_plans:
            self.truncated = True
            return
        if position == self.length - 1:
            self._finalize(steps, cardinality, available, order_served)
            return
        start = max(position, 0)
        pivot = None if position < 0 else self.rpath[position].id_field
        if pivot is not None and pivot.id not in available:
            return
        # explore the longest segments first: the single-get materialized
        # view plan is always found before the plan cap can bite
        first_end = start + (0 if position < 0 else 1)
        for end in range(self.length - 1, first_end - 1, -1):
            segment = self.rpath[start:end + 1]
            span = range(start if position < 0 else position,
                         end + 1)
            segment_conditions = self._conditions_in(span, consumed)
            for index in self.planner.segment_indexes(segment):
                # once the cap is hit no plan can ever be added again, so
                # stop iterating instead of binding candidates that only
                # bounce off the cap while the recursion unwinds
                if len(self.plans) >= self.max_plans:
                    self.truncated = True
                    return
                binding = self._bind(index, segment_conditions, pivot)
                if binding is None:
                    continue
                self._emit(index, segment, binding, position, end, steps,
                           cardinality, consumed, available, order_served)

    def _conditions_in(self, positions, consumed):
        conditions = []
        for position in positions:
            for condition in self.conditions_at.get(position, []):
                if condition.field.id not in consumed:
                    conditions.append(condition)
        return conditions

    def _bind(self, index, conditions, pivot):
        """Work out how ``index`` can serve one get over its segment."""
        by_field = {c.field.id: c for c in conditions}
        served = []
        eq_fields = []
        per_binding_raw = self.planner.entries_of(index)
        # IN predicates bind a key column as a k-way multi-get: each of
        # the k requests narrows like an equality, and the request count
        # multiplies by k
        binding_factor = 1.0
        for field in index.hash_fields:
            if pivot is not None and field is pivot:
                eq_fields.append(field)
                per_binding_raw /= max(field.parent.count, 1)
                continue
            condition = by_field.get(field.id)
            if condition is None or not condition.is_bindable:
                return None
            served.append(condition)
            eq_fields.append(field)
            per_binding_raw *= condition.selectivity \
                / condition.cardinality
            binding_factor *= condition.cardinality
        # clustering prefix: bind equalities (and INs) greedily, then
        # one range
        position = 0
        order_fields = index.order_fields
        while position < len(order_fields):
            condition = by_field.get(order_fields[position].id)
            if condition is None or not condition.is_bindable \
                    or condition in served:
                break
            served.append(condition)
            eq_fields.append(order_fields[position])
            per_binding_raw *= condition.selectivity \
                / condition.cardinality
            binding_factor *= condition.cardinality
            position += 1
        eq_prefix_end = position
        range_condition = None
        if position < len(order_fields):
            condition = by_field.get(order_fields[position].id)
            if condition is not None and condition.is_range:
                range_condition = condition
                served.append(condition)
                per_binding_raw *= condition.selectivity
                position += 1
        # results come back sorted by the clustering columns that follow
        # the equality-bound prefix (a bound range column still orders its
        # rows), so the ordering is served when those columns lead with
        # the query's ORDER BY list
        remaining = tuple(order_fields[eq_prefix_end:])
        # a multi-get (IN binding) interleaves its requests' rows, so it
        # cannot serve the ordering even when the clustering order fits
        order_served = bool(self.order_by) \
            and remaining[:len(self.order_by)] == self.order_by \
            and binding_factor == 1.0
        filters = []
        pending = []
        for condition in conditions:
            if condition in served:
                continue
            if index.contains_field(condition.field):
                filters.append(condition)
            else:
                pending.append(condition)
        return _Binding(tuple(eq_fields), range_condition, tuple(filters),
                        tuple(pending), tuple(served), per_binding_raw,
                        order_served, binding_factor)

    def _emit(self, index, segment, binding, position, end, steps,
              cardinality, consumed, available, order_served):
        """Create the lookup (+ filter/fetch) steps and recurse."""
        bindings = cardinality * binding.binding_factor
        raw_rows = max(bindings * binding.per_binding_raw, 0.0)
        out = raw_rows
        new_steps = list(steps)
        lookup = IndexLookupStep(
            index, bindings, raw_rows, out,
            eq_fields=binding.eq_fields,
            range_field=(binding.range_condition.field
                         if binding.range_condition else None),
            order_served=binding.order_served)
        new_steps.append(lookup)
        new_available = set(available)
        new_available.update(f.id for f in index.all_fields)
        new_consumed = set(consumed)
        new_consumed.update(c.field.id for c in binding.served)
        if binding.filters:
            filtered = out
            for condition in binding.filters:
                filtered *= condition.selectivity
                new_consumed.add(condition.field.id)
            new_steps.append(FilterStep(binding.filters, out, filtered))
            out = filtered
        # the first (and only) lookup of a plan can serve the ordering;
        # later joins interleave partitions and lose it
        new_order = binding.order_served if position < 0 else False
        fetch_groups = self._fetch_options(binding.pending, new_available)
        if fetch_groups is None:
            return
        for fetch_combo in fetch_groups:
            if len(self.plans) >= self.max_plans:
                self.truncated = True
                return
            combo_steps = list(new_steps)
            combo_out = out
            combo_consumed = set(new_consumed)
            combo_available = set(new_available)
            for fetch_index, fetch_conditions in fetch_combo:
                fetch = IndexLookupStep(
                    fetch_index, combo_out, combo_out, combo_out,
                    eq_fields=fetch_index.hash_fields, is_fetch=True)
                combo_steps.append(fetch)
                combo_available.update(
                    f.id for f in fetch_index.all_fields)
                filtered = combo_out
                for condition in fetch_conditions:
                    filtered *= condition.selectivity
                    combo_consumed.add(condition.field.id)
                combo_steps.append(
                    FilterStep(fetch_conditions, combo_out, filtered))
                combo_out = filtered
            self.advance(end, tuple(combo_steps), max(combo_out, 0.0),
                         frozenset(combo_consumed),
                         frozenset(combo_available), new_order)

    def _fetch_options(self, pending, available):
        """Ways to resolve pending predicates via point lookups.

        Returns a list of alternatives, each a tuple of
        ``(fetch index, conditions filtered after it)``; None when some
        predicate cannot be resolved with the current pool.
        """
        if not pending:
            return [()]
        by_entity = {}
        for condition in pending:
            by_entity.setdefault(condition.field.parent, []).append(condition)
        per_entity_options = []
        for entity, conditions in by_entity.items():
            if entity.id_field.id not in available:
                return None
            fields = [c.field for c in conditions]
            options = self.planner.fetch_indexes(entity, fields)
            if not options:
                return None
            per_entity_options.append(
                [(index, tuple(conditions)) for index in options])
        return [tuple(combo) for combo
                in itertools.product(*per_entity_options)]

    # -- plan completion ---------------------------------------------------------

    def _finalize(self, steps, cardinality, available, order_served):
        """Resolve remaining select fields, ordering and limit; record."""
        select = tuple(getattr(self.query, "select", ()))
        needed = dict.fromkeys(select)
        if self.order_by and not order_served:
            # a client-side sort needs the ordering attributes fetched
            needed.update(dict.fromkeys(self.order_by))
        missing = [f for f in needed if f.id not in available]
        variants = [()]
        if missing:
            by_entity = {}
            for field in missing:
                by_entity.setdefault(field.parent, []).append(field)
            per_entity = []
            for entity, fields in by_entity.items():
                if entity.id_field.id not in available:
                    return
                options = self.planner.fetch_indexes(entity, fields)
                if not options:
                    return
                per_entity.append(options)
            variants = [tuple(combo)
                        for combo in itertools.product(*per_entity)]
        # compute each variant's signature from the step skeleton and skip
        # duplicates before building any step or plan objects — distinct
        # DFS branches converge on the same plan far more often than not,
        # so most variants never get past this string check
        prefix_parts = []
        for step in steps:
            if isinstance(step, IndexLookupStep):
                prefix_parts.append(f"L:{step.index.key}")
            else:
                prefix_parts.append(type(step).__name__[0])
        needs_sort = bool(self.order_by) and not order_served
        limit = getattr(self.query, "limit", None)
        aggregated = getattr(self.query, "is_aggregate", False)
        suffix_parts = ([SortStep.__name__[0]] if needs_sort else []) \
            + ([AggregateStep.__name__[0]] if aggregated else []) \
            + ([LimitStep.__name__[0]] if limit is not None else [])
        last_variant = len(variants) - 1
        for variant, fetch_indexes in enumerate(variants):
            parts = list(prefix_parts)
            parts.extend(f"L:{fetch_index.key}"
                         for fetch_index in fetch_indexes)
            parts.extend(suffix_parts)
            signature = "|".join(parts)
            if signature not in self.plans:
                final_steps = list(steps)
                out = cardinality
                for fetch_index in fetch_indexes:
                    final_steps.append(IndexLookupStep(
                        fetch_index, out, out, out,
                        eq_fields=fetch_index.hash_fields, is_fetch=True))
                if needs_sort:
                    final_steps.append(SortStep(self.order_by, out))
                if aggregated:
                    groups = min(self.query.group_rows, max(out, 1.0))
                    final_steps.append(AggregateStep(
                        self.query.group_by, self.query.aggregates,
                        out, groups))
                    out = groups
                if limit is not None:
                    final_steps.append(LimitStep(limit, out))
                self.plans[signature] = QueryPlan(self.query, final_steps)
            if len(self.plans) >= self.max_plans:
                if variant < last_variant:
                    self.truncated = True
                return
