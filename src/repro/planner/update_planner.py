"""Update planning: support queries plus put/delete steps (paper §VI-B).

For every (update, candidate column family) pair where the update
modifies the column family, the update planner builds an
:class:`~repro.planner.plans.UpdatePlan`: the support-query plan spaces
that locate the affected rows, followed by the delete and/or insert
steps that apply the change.  The optimizer charges these plans only
when the column family is selected for the schema (Fig 10).
"""

from __future__ import annotations

from repro.enumerator.support import (
    modified_row_counts,
    modifies,
    support_queries,
)
from repro.exceptions import PlanningError
from repro.parallel import parallel_map
from repro.planner.plans import UpdatePlan
from repro.planner.steps import DeleteStep, InsertStep


class UpdatePlanner:
    """Builds maintenance plans for updates over a candidate pool.

    ``max_support_plans`` caps the plan space per support query: support
    queries exist for every (update, modified column family) pair, so an
    uncapped space multiplies quickly.
    """

    def __init__(self, model, query_planner, max_support_plans=32):
        self.model = model
        self.query_planner = query_planner
        self.max_support_plans = max_support_plans

    def plans_for(self, update, indexes=None, require=True):
        """One :class:`UpdatePlan` per modified column family.

        ``indexes`` defaults to the query planner's pool.  When
        ``require`` is unset, column families whose support queries
        cannot be planned are skipped instead of raising — useful when
        evaluating a fixed, hand-written schema.
        """
        pool = self.query_planner.pool if indexes is None else indexes
        plans = []
        for index in pool:
            if not modifies(update, index):
                continue
            plan = self.plan_one(update, index, require=require)
            if plan is not None:
                plans.append(plan)
        return plans

    def support_queries_for(self, update, index):
        """The support queries maintaining ``index`` under ``update``.

        A pure function of the pair (§VI-B); exposed so the advisor can
        fingerprint the pool subset relevant to each support query
        before deciding whether a cached maintenance plan still
        applies.
        """
        return list(support_queries(update, index))

    def plan_all(self, updates, indexes=None, require=True, jobs=None):
        """Maintenance plan spaces for many updates: ``{update: [plans]}``.

        Per-update planning is independent; ``jobs`` fans it out over a
        thread pool while keeping results in input order.
        """
        updates = list(updates)
        spaces = parallel_map(
            lambda update: self.plans_for(update, indexes=indexes,
                                          require=require),
            updates, jobs=jobs)
        return dict(zip(updates, spaces))

    def plan_one(self, update, index, require=True, supports=None):
        """The maintenance plan for one (update, column family) pair.

        ``supports`` optionally passes pre-built support queries (from
        :meth:`support_queries_for`) to avoid deriving them twice.
        Returns None when ``require`` is unset and a support query has
        no plan.
        """
        if supports is None:
            supports = support_queries(update, index)
        support_plans = []
        truncated_support = []
        for support in supports:
            try:
                plans = self.query_planner.plans_for(
                    support, max_plans=self.max_support_plans)
            except PlanningError:
                if require:
                    raise PlanningError(
                        f"cannot plan support query {support.text or support!r} "
                        f"for {update.label or update!r} on {index.key}")
                return None
            if getattr(plans, "truncated", False):
                truncated_support.append(support)
            support_plans.extend(plans)
        deleted, inserted = modified_row_counts(update, index)
        steps = []
        if deleted > 0:
            steps.append(DeleteStep(index, deleted))
        if inserted > 0:
            steps.append(InsertStep(index, inserted))
        return UpdatePlan(update, index, support_plans, steps,
                          truncated_support=truncated_support)
