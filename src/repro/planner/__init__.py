"""Query and update planning (paper §IV-B, §IV-C, §VI-B).

The planner enumerates, for each statement, the space of implementation
plans available over a pool of candidate column families.  Plans are
sequences of the application model's four primitive operations — get
(:class:`IndexLookupStep`), filter, sort, join (chained lookups) — plus
put/delete steps for updates.  The optimizer later selects one plan per
statement.
"""

from repro.planner.plans import PlanSpace, QueryPlan, UpdatePlan
from repro.planner.query_planner import QueryPlanner
from repro.planner.steps import (
    DeleteStep,
    FilterStep,
    IndexLookupStep,
    InsertStep,
    LimitStep,
    PlanStep,
    SortStep,
)
from repro.planner.update_planner import UpdatePlanner

__all__ = [
    "DeleteStep",
    "FilterStep",
    "IndexLookupStep",
    "InsertStep",
    "LimitStep",
    "PlanSpace",
    "PlanStep",
    "QueryPlan",
    "QueryPlanner",
    "SortStep",
    "UpdatePlan",
    "UpdatePlanner",
]
