"""Dominance pruning over candidate-set bitsets.

The advisor's plan-space pruning applies two rules per statement
(:func:`repro.advisor.prune_plan_space`): keep the cheapest plan per
distinct column-family set, then drop any plan whose column-family set
is a proper superset of a cheaper kept plan's.  The superset rule is
the expensive one — it compares every plan against every cheaper
survivor — and this module implements it twice:

* a **scalar** engine, the reference pairwise scan over ``frozenset``
  keys, and
* a **vector** engine that encodes each plan's column-family set as one
  row of a boolean membership matrix (one column per column family) and
  answers all pairwise subset tests with a single matrix product:
  ``keys_j ⊆ keys_i  ⟺  |keys_i ∩ keys_j| == |keys_j|``, where the
  intersection sizes are ``M @ M.T``.

Both engines produce byte-identical results — the same kept plans in
the same order and the same pruning-ledger entries, each dominated plan
attributed to the *first kept* cheaper plan whose set it contains
(ascending (cost, signature) order).  The scalar loop only ever tests
kept plans; the vector path tests *all* earlier plans, which is
equivalent by transitivity: a dominated dominator's own kept dominator
is a subset of it, hence also of the dominated plan.

Engine choice: the ``engine`` argument (``"auto"``, ``"vector"``,
``"scalar"``), else the ``NOSE_VECTORIZE`` environment variable, else
``auto`` — which uses the vector path for spaces of at least
:data:`VECTOR_MIN_PLANS` plans, below which the matrix build costs more
than the scan it replaces.

The module also hosts the vectorized maintenance-plan reachability
closure (:func:`reachable_update_plans`): one boolean support-matrix
row per maintenance plan, closed over a reachable-key vector instead of
a Python worklist.
"""

from __future__ import annotations

import os

import numpy as np

from repro import telemetry
from repro.explain import prune_entry

__all__ = [
    "VECTOR_MIN_PLANS",
    "dedupe_cheapest",
    "plan_keys",
    "reachable_update_plans",
    "resolve_engine",
    "superset_filter",
]

#: below this many plans the scalar scan beats building the matrices
VECTOR_MIN_PLANS = 64

_ENGINES = ("auto", "vector", "scalar")

_ENGINE_ALIASES = {
    "1": "vector", "true": "vector", "on": "vector", "yes": "vector",
    "0": "scalar", "false": "scalar", "off": "scalar", "no": "scalar",
    "": "auto",
}


def resolve_engine(engine=None):
    """Normalize an engine choice; None consults ``NOSE_VECTORIZE``."""
    if engine is None:
        engine = os.environ.get("NOSE_VECTORIZE", "auto")
    engine = str(engine).strip().lower()
    engine = _ENGINE_ALIASES.get(engine, engine)
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown dominance engine {engine!r}; expected one of "
            f"{', '.join(_ENGINES)} (or a NOSE_VECTORIZE boolean)")
    return engine


def _signature(plan):
    # cost ties are broken by plan signature for reproducibility; plain
    # stand-in plan objects (as used in tests) may not carry one
    return getattr(plan, "signature", "")


def plan_keys(plan):
    """The plan's column-family key set, cached on the plan.

    Pruning consults each plan's set several times (dedupe, superset
    matrix build, reachability seeding); the steps are immutable, so
    the frozenset is computed once.  Slotted stand-ins that cannot take
    the attribute are handled by recomputing.
    """
    try:
        return plan._cfkeys
    except AttributeError:
        pass
    keyset = frozenset(index.key for index in plan.indexes)
    try:
        plan._cfkeys = keyset
    except AttributeError:  # pragma: no cover - slotted stand-ins
        pass
    return keyset


def dedupe_cheapest(plans, removals=None):
    """The duplicate-cfset rule: cheapest plan per column-family set.

    Returns survivors sorted ascending by (cost, signature).
    ``removals`` receives one ``duplicate-cfset`` ledger entry per
    dropped plan, in discovery order.
    """
    best = {}
    for plan in plans:
        keyset = plan_keys(plan)
        current = best.get(keyset)
        if current is None:
            best[keyset] = plan
            continue
        cost = plan.cost
        current_cost = current.cost
        # signatures are only consulted on exact cost ties — building
        # the signature string for every plan measurably dominates the
        # pass on large spaces
        if cost < current_cost or (cost == current_cost
                                   and _signature(plan)
                                   < _signature(current)):
            if removals is not None:
                removals.append(prune_entry(current, "duplicate-cfset",
                                            dominated_by=plan))
            best[keyset] = plan
        elif removals is not None:
            removals.append(prune_entry(plan, "duplicate-cfset",
                                        dominated_by=current))
    return sorted(best.values(),
                  key=lambda plan: (plan.cost, _signature(plan)))


def superset_filter(plans, removals=None, engine=None):
    """The superset-cfset rule over a deduplicated, sorted plan list.

    ``plans`` must be in ascending (cost, signature) order with
    pairwise-distinct column-family sets (the output of
    :func:`dedupe_cheapest`).  Drops every plan whose set properly
    contains an earlier plan's set; returns the kept plans in order.
    ``removals`` receives one ``superset-cfset`` entry per dropped
    plan, attributed to its first kept dominator.
    """
    plans = list(plans)
    engine = resolve_engine(engine)
    use_vector = engine == "vector" or (
        engine == "auto" and len(plans) >= VECTOR_MIN_PLANS)
    active = telemetry.current()
    if active.enabled:
        active.count("prune.vector_spaces" if use_vector
                     else "prune.scalar_spaces")
    if use_vector:
        return _superset_vector(plans, removals)
    return _superset_scalar(plans, removals)


def _superset_scalar(plans, removals):
    kept = []
    kept_keys = []
    for plan in plans:
        keys = plan_keys(plan)
        dominator = next((position
                          for position, existing in enumerate(kept_keys)
                          if existing < keys), None)
        if dominator is not None:
            if removals is not None:
                removals.append(prune_entry(
                    plan, "superset-cfset",
                    dominated_by=kept[dominator]))
            continue
        kept.append(plan)
        kept_keys.append(keys)
    return kept


def _superset_vector(plans, removals):
    count = len(plans)
    if count < 2:
        return plans
    keysets = [plan_keys(plan) for plan in plans]
    columns = {}
    for keyset in keysets:
        for key in keyset:
            if key not in columns:
                columns[key] = len(columns)
    width = len(columns)
    if width == 0:
        # all-empty sets are pairwise equal, never proper sub/supersets
        return plans
    matrix = np.zeros((count, width), dtype=np.float32)
    for row, keyset in enumerate(keysets):
        for key in keyset:
            matrix[row, columns[key]] = 1.0
    # intersections[i, j] = |keys_i ∩ keys_j|; the values are small
    # integers, exact in float32
    popcount = matrix.sum(axis=1)
    intersections = matrix @ matrix.T
    # proper subset: full containment and strictly smaller set (sets
    # are pairwise distinct after dedupe, so equality means identity)
    subset = (intersections == popcount[None, :]) \
        & (popcount[None, :] < popcount[:, None])
    earlier = np.tri(count, count, -1, dtype=bool)
    dominating = subset & earlier
    dominated = dominating.any(axis=1)
    if not dominated.any():
        return plans
    kept = [plan for plan, dead in zip(plans, dominated) if not dead]
    if removals is not None:
        # the ledger names the first *kept* dominator, matching the
        # scalar scan; every dominated plan has one by transitivity
        allowed = dominating & ~dominated[None, :]
        dominators = np.argmax(allowed, axis=1)
        for position in np.flatnonzero(dominated):
            removals.append(prune_entry(
                plans[position], "superset-cfset",
                dominated_by=plans[int(dominators[position])]))
    return kept


def reachable_update_plans(query_plans, update_plans):
    """Drop maintenance plans for unreachable candidates.

    After plan-space pruning, a candidate column family may appear in
    no retained query plan and in no support plan reachable from one.
    Selecting such a candidate can only add maintenance cost and
    storage (all costs are nonnegative), so some optimal solution —
    also under a space limit, and for the schema-minimising second
    solve — never selects it, and its maintenance plans can be dropped
    from the BIP outright.  The reachable set is closed transitively: a
    reachable candidate's support plans may themselves look up further
    candidates.

    The closure runs over bit vectors: one boolean support-matrix row
    per maintenance plan, OR-folded into the reachable-key vector until
    a pass activates no new plan.
    """
    flat = [update_plan for plans in update_plans.values()
            for update_plan in plans]
    if not flat:
        return {update: list(plans)
                for update, plans in update_plans.items()}
    columns = {}

    def column(key):
        position = columns.get(key)
        if position is None:
            position = columns[key] = len(columns)
        return position

    maintained = np.array([column(update_plan.index.key)
                           for update_plan in flat])
    support_columns = []
    for update_plan in flat:
        cols = set()
        for plan in update_plan.support_plans:
            for key in plan_keys(plan):
                cols.add(column(key))
        support_columns.append(sorted(cols))
    seeds = {column(key)
             for plans in query_plans.values()
             for plan in plans
             for key in plan_keys(plan)}
    support_matrix = np.zeros((len(flat), len(columns)), dtype=bool)
    for row, cols in enumerate(support_columns):
        support_matrix[row, cols] = True
    reachable = np.zeros(len(columns), dtype=bool)
    reachable[sorted(seeds)] = True
    visited = np.zeros(len(flat), dtype=bool)
    while True:
        activated = reachable[maintained] & ~visited
        if not activated.any():
            break
        reachable |= support_matrix[activated].any(axis=0)
        visited |= activated
    survivors = reachable[maintained]
    result = {}
    position = 0
    for update, plans in update_plans.items():
        kept = []
        for update_plan in plans:
            if survivors[position]:
                kept.append(update_plan)
            position += 1
        result[update] = kept
    return result
