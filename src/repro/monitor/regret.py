"""Regret estimation: what does standing still cost under the live mix?

``estimate_regret`` prices the *current* recommendation under the
monitor's observed statement weights — reusing the per-statement
unweighted costs the recommendation already carries, no replanning —
and compares it against a *fresh* re-advise for the same structure
under those weights.  The structural prepared-workload cache (PR 1)
and per-statement artifact store (PR 4) make the re-advise cheap: the
observed workload differs from the advised one only in weights, so
``Advisor.prepare`` is a cache hit and only cost/prune/solve rerun.

Regret is ``stale_cost - fresh_cost`` (non-negative up to solver
tolerance, since the fresh solve optimizes exactly the objective the
stale schema is being scored on).  A large regret is the signal that
re-advising is worth a migration; a small one says the old schema is
still fine even though the mix moved.
"""

from __future__ import annotations

__all__ = ["estimate_regret"]


def estimate_regret(advisor, workload, recommendation, observed,
                    space_limit=None, jobs=None):
    """Price ``recommendation`` under ``observed`` weights vs re-advising.

    ``observed`` is either a ``{label: weight}`` mapping or anything
    with an ``observed_weights()`` method (a ``WorkloadMonitor``).
    Weights are normalized to sum 1 so the reported costs are
    per-request expectations, comparable across runs of different
    lengths; labels the advised ``workload`` knows but the observation
    missed are priced at weight 0 (the BIP requires every prepared
    statement to carry a weight).

    Returns the regret section of the monitor document plus the fresh
    recommendation under ``"recommendation"`` (not serialized — the
    document builder summarizes it).
    """
    if hasattr(observed, "observed_weights"):
        observed = observed.observed_weights()
    total = sum(weight for weight in observed.values() if weight > 0)
    if total <= 0.0:
        return {
            "observed_requests": 0,
            "stale_cost": None,
            "fresh_cost": None,
            "regret": None,
            "regret_pct": None,
            "recommendation": None,
        }
    weights = {label: max(observed.get(label, 0.0), 0.0) / total
               for label in workload.statements}
    ignored = sorted(label for label in observed
                     if label not in workload.statements)
    stale = 0.0
    for label, (_advised_weight, unweighted) in \
            recommendation.statement_costs.items():
        stale += weights.get(label, 0.0) * unweighted
    prepared = advisor.prepare(workload, jobs=jobs)
    fresh = advisor.recommend_prepared(prepared, weights=weights,
                                       space_limit=space_limit,
                                       jobs=jobs)
    regret = stale - fresh.total_cost
    section = {
        "stale_cost": round(stale, 6),
        "fresh_cost": round(fresh.total_cost, 6),
        "regret": round(regret, 6),
        "regret_pct": (round(100.0 * regret / stale, 3)
                       if stale > 0 else None),
        "fresh_indexes": len(fresh.indexes),
        "stale_indexes": len(recommendation.indexes),
        "recommendation": fresh,
    }
    if ignored:
        section["ignored_labels"] = ignored
    return section
