"""The "nose-monitor/1" document: one run of the drift observatory.

``monitor_document`` folds a :class:`~repro.monitor.WorkloadMonitor`,
its :class:`~repro.monitor.DriftDetector` and an optional regret
section into a single JSON-able document.  Everything in it is
deterministic — logical-clock timestamps, digest-sorted lists, rounded
floats, no wall-clock — so serial and ``jobs=N`` monitored runs
serialize byte-identically through
:func:`repro.io.serialize.dump_monitor`.
"""

from __future__ import annotations

__all__ = ["MONITOR_FORMAT", "monitor_document"]

MONITOR_FORMAT = "nose-monitor/1"


def _digest_labels(monitor):
    """``{digest: [labels]}`` across advised and observed statements."""
    labels = {}
    for statement in monitor.workload.statements.values():
        digest = monitor._digest_for(statement)
        labels.setdefault(digest, set()).add(statement.label)
    for (digest, label) in monitor.estimates:
        labels.setdefault(digest, set()).add(label)
    return {digest: sorted(names) for digest, names in labels.items()}


def monitor_document(monitor, detector=None, regret=None, meta=None):
    """Assemble the byte-stable monitor document.

    ``regret`` is the mapping :func:`repro.monitor.estimate_regret`
    returns; its non-serializable ``"recommendation"`` entry is
    replaced by a schema summary.  ``meta`` carries run facts (source,
    mixes, jobs) — callers must keep wall-clock values out of it.
    """
    document = {
        "format": MONITOR_FORMAT,
        "meta": dict(meta or {}),
        "ingest": {
            "requests": monitor.requests,
            "half_life": monitor.half_life,
            "clock": round(monitor.clock, 6),
            "simulated_seconds": round(monitor.simulated_seconds, 6),
            "statements_tracked": len(monitor.estimates),
            "recent": [list(entry) for entry in monitor.recent],
        },
        "estimates": monitor.estimates_dict(),
    }
    if detector is not None:
        drift = detector.as_dict()
        labels = _digest_labels(monitor)
        latest = drift.get("latest")
        if latest:
            drift["structural"] = {
                "added": {digest: labels.get(digest, [])
                          for digest in latest["structural_added"]},
                "removed": {digest: labels.get(digest, [])
                            for digest in latest["structural_removed"]},
            }
        document["drift"] = drift
    if regret is not None:
        section = {key: value for key, value in regret.items()
                   if key != "recommendation"}
        fresh = regret.get("recommendation")
        if fresh is not None:
            section["fresh_schema"] = sorted(index.key
                                             for index in fresh.indexes)
        document["regret"] = section
    return document
