"""Workload drift observatory: see the mix move, price standing still.

NoSE advises for a fixed workload; deployments drift.  This package
closes the loop from execution back to advising:

* :class:`WorkloadMonitor` ingests executed statements — live through
  an :class:`~repro.backend.executor.ExecutionEngine` hook or from a
  recorded trace — into exponentially-decayed per-statement weight
  estimates keyed by structural digest;
* :class:`DriftDetector` compares the decayed observed mix against the
  advised workload (L1 + Jensen–Shannon weight drift, added/removed
  structural drift) with threshold+hysteresis alerts riding
  ``monitor.*`` telemetry;
* :func:`estimate_regret` prices the standing recommendation under the
  observed mix against a fresh re-advise (a prepared-cache hit, so
  cheap), quantifying what staying put costs;
* :func:`monitor_document` rolls all of it into the byte-stable
  "nose-monitor/1" document behind ``nose-advisor monitor``.
"""

from repro.monitor.demo import drift_demo, epsilon_floored_workload
from repro.monitor.document import MONITOR_FORMAT, monitor_document
from repro.monitor.drift import DriftDetector, js_divergence, l1_distance
from repro.monitor.monitor import StatementEstimate, WorkloadMonitor
from repro.monitor.regret import estimate_regret

__all__ = [
    "DriftDetector",
    "MONITOR_FORMAT",
    "StatementEstimate",
    "WorkloadMonitor",
    "drift_demo",
    "epsilon_floored_workload",
    "estimate_regret",
    "js_divergence",
    "l1_distance",
    "monitor_document",
]
