"""Live workload ingestion with exponentially-decayed weight estimates.

A :class:`WorkloadMonitor` watches statements as they execute and
maintains, per statement, an exponentially-decayed request-rate
estimate: each observation adds ``1`` and every estimate halves once
per ``half_life`` time units of inactivity.  Decay is applied lazily —
an estimate is only brought forward to the current clock when it is
touched or read — so ingestion is O(1) per statement regardless of how
many statements are tracked.

Estimates are keyed by ``(statement_digest, label)``: the digest is the
structural identity drift detection compares against the advised
workload (two relabelled copies of the same statement are the same
traffic), while the label disambiguates structurally-identical
statements (RUBiS has several) so regret estimation can price the
observed mix against the recommendation's per-label plans.

Time is a *logical* clock, not wall-clock: it advances by one unit per
ingested request (so ``half_life`` reads as "requests until an idle
estimate halves"), and trace events may carry their own timestamps in
whatever unit the trace chose.  The store's simulated service time is
tracked alongside for reporting.  Keeping wall-clock out makes monitor
documents byte-stable across runs and across ``jobs=N``.
"""

from __future__ import annotations

from collections import deque

from repro.workload.digest import statement_digest

__all__ = ["StatementEstimate", "WorkloadMonitor"]

#: default decay half-life, in logical-clock units (requests)
DEFAULT_HALF_LIFE = 100.0

#: default rolling event-log capacity (recent observations kept)
DEFAULT_WINDOW = 256


class StatementEstimate:
    """Decayed weight estimate for one (digest, label) pair."""

    __slots__ = ("digest", "label", "kind", "requests", "weight",
                 "last_time", "first_time")

    def __init__(self, digest, label, kind):
        self.digest = digest
        self.label = label
        self.kind = kind
        self.requests = 0
        self.weight = 0.0
        self.last_time = None
        self.first_time = None

    def decayed(self, time, half_life):
        """The estimate's weight brought forward to ``time``."""
        if self.last_time is None or time <= self.last_time:
            return self.weight
        return self.weight * 0.5 ** ((time - self.last_time) / half_life)

    def observe(self, time, half_life, amount=1.0):
        self.weight = self.decayed(time, half_life) + amount
        self.requests += 1
        if self.first_time is None:
            self.first_time = time
        self.last_time = time if self.last_time is None \
            else max(self.last_time, time)


class WorkloadMonitor:
    """Ingests executed statements into decayed per-statement weights.

    ``workload`` is the advised :class:`~repro.workload.Workload` the
    live traffic is compared against; its statement labels are used to
    resolve trace events and its weights form the advised distribution
    for drift detection.

    Attach to an engine with ``ExecutionEngine(..., monitor=monitor)``
    — the engine calls :meth:`observe_execution` from the same
    ``_observed`` wrapper that feeds the flight recorder — or replay a
    recorded trace with :meth:`replay_trace`.
    """

    def __init__(self, workload, half_life=DEFAULT_HALF_LIFE,
                 window=DEFAULT_WINDOW):
        if half_life <= 0:
            raise ValueError(
                f"half_life must be positive, got {half_life!r}")
        self.workload = workload
        self.half_life = float(half_life)
        self.estimates = {}
        self.requests = 0
        self.clock = 0.0
        #: cumulative simulated store service time (seconds), when fed
        #: by an execution engine
        self.simulated_seconds = 0.0
        #: rolling log of recent observations, newest last
        self.recent = deque(maxlen=window)
        self._digests = {}

    # -- ingestion -----------------------------------------------------------

    def _digest_for(self, statement):
        # keyed by object identity, not label: live traffic may reuse an
        # advised label for a structurally different statement, and the
        # whole point of the digest is telling those apart
        digest = self._digests.get(statement)
        if digest is None:
            digest = self._digests[statement] = \
                statement_digest(statement)
        return digest

    def observe(self, statement, label=None, kind=None, time=None,
                amount=1.0):
        """Record one execution of ``statement``.

        ``time`` defaults to one clock tick after the previous
        observation; explicit times must be non-decreasing for decay to
        mean anything, so the clock ratchets forward (a stale time is
        clamped to the clock).
        """
        label = label or getattr(statement, "label", None) \
            or "<unlabelled>"
        if kind is None:
            from repro.workload.statements import Query
            kind = "query" if isinstance(statement, Query) else "update"
        if time is None:
            time = self.clock + 1.0
        self.clock = max(self.clock, time)
        digest = self._digest_for(statement)
        key = (digest, label)
        estimate = self.estimates.get(key)
        if estimate is None:
            estimate = self.estimates[key] = StatementEstimate(
                digest, label, kind)
        estimate.observe(self.clock, self.half_life, amount)
        self.requests += 1
        self.recent.append((round(self.clock, 6), label, digest))

    def observe_execution(self, statement, label, kind, delta):
        """Engine-side hook: one statement executed with metric ``delta``.

        The logical clock advances one tick per statement; the store's
        simulated service time accumulates separately for reporting —
        both deterministic, so monitored runs stay byte-stable.
        """
        self.simulated_seconds += delta.get("simulated_ms", 0.0) / 1000.0
        if statement is None:  # pragma: no cover - defensive
            return
        self.observe(statement, label=label, kind=kind)

    def replay_trace(self, events):
        """Ingest recorded trace events.

        Each event is a mapping with a ``label`` (resolved against the
        advised workload's statements) and optionally a ``time`` (the
        logical timestamp; defaults to the running clock) and a
        ``count`` of identical requests.  Unknown labels raise
        ``ValueError`` — a trace that does not match the advised
        workload cannot be compared against it.
        """
        statements = self.workload.statements
        for position, event in enumerate(events):
            label = event.get("label")
            if label is None:
                raise ValueError(
                    f"trace event #{position} has no 'label': {event!r}")
            statement = statements.get(label)
            if statement is None:
                raise ValueError(
                    f"trace event #{position} references unknown "
                    f"statement {label!r}; advised workload has: "
                    f"{sorted(statements)}")
            time = event.get("time")
            for _ in range(int(event.get("count", 1))):
                self.observe(statement, label=label, time=time)

    # -- read-out ------------------------------------------------------------

    def observed_weights(self, time=None):
        """``{label: decayed weight}`` at ``time`` (default: now)."""
        time = self.clock if time is None else time
        weights = {}
        for (_digest, label), estimate in self.estimates.items():
            weights[label] = weights.get(label, 0.0) \
                + estimate.decayed(time, self.half_life)
        return weights

    def observed_distribution(self, time=None):
        """``{digest: share}`` — decayed weights normalized to sum 1.

        Empty when nothing has been observed (or everything decayed to
        zero); callers must treat an empty distribution as "no signal",
        not as drift.
        """
        time = self.clock if time is None else time
        totals = {}
        for (digest, _label), estimate in self.estimates.items():
            totals[digest] = totals.get(digest, 0.0) \
                + estimate.decayed(time, self.half_life)
        grand = sum(totals.values())
        if grand <= 0.0:
            return {}
        return {digest: weight / grand
                for digest, weight in totals.items()}

    def advised_distribution(self):
        """``{digest: share}`` of the advised workload's active mix."""
        totals = {}
        for statement, weight in self.workload.weighted_statements:
            digest = self._digest_for(statement)
            totals[digest] = totals.get(digest, 0.0) + weight
        grand = sum(totals.values())
        if grand <= 0.0:
            return {}
        return {digest: weight / grand
                for digest, weight in totals.items()}

    def estimates_dict(self, time=None):
        """Per-label estimate records, label-sorted, for the document."""
        time = self.clock if time is None else time
        section = {}
        for (digest, label) in sorted(self.estimates,
                                      key=lambda key: (key[1], key[0])):
            estimate = self.estimates[(digest, label)]
            section[label] = {
                "digest": digest,
                "kind": estimate.kind,
                "requests": estimate.requests,
                "weight": round(estimate.decayed(time, self.half_life),
                                6),
            }
        return section
