"""Drift detection between the advised workload and live traffic.

A :class:`DriftDetector` periodically compares the monitor's decayed
observed statement distribution against the advised workload's mix:

* **weight drift** — L1 distance (total variation × 2, range [0, 2])
  and Jensen–Shannon divergence (base 2, range [0, 1]) between the two
  digest-keyed distributions;
* **structural drift** — digests seen live but absent from the advised
  workload (*added*) and advised digests that have vanished from the
  live traffic (*removed*).  Removal only counts advised digests whose
  advised share is at least ``min_advised_share``, so epsilon-weighted
  statements the advisor planned "just in case" do not trip the alarm
  while they are legitimately idle.

Alerts use threshold + hysteresis: an alert raises when the metric
crosses its threshold and clears only when it falls back below
``threshold * hysteresis``, so a metric oscillating around the
threshold produces one alert, not a flap storm.  State changes are
surfaced through :mod:`repro.telemetry` as ``monitor.*`` gauges,
counters and events, and recorded on the detector for the drift
timeline in monitor documents.
"""

from __future__ import annotations

import math

from repro import telemetry

__all__ = ["DriftDetector", "js_divergence", "l1_distance"]

#: observed share below which an advised digest counts as vanished
VANISH_SHARE = 1e-6

#: advised share below which a digest is never reported as removed
MIN_ADVISED_SHARE = 0.005


def l1_distance(first, second):
    """L1 distance between two share mappings (range [0, 2])."""
    # sorted keys: exact symmetry and run-to-run stable float sums
    return sum(abs(first.get(key, 0.0) - second.get(key, 0.0))
               for key in sorted(set(first) | set(second)))


def js_divergence(first, second):
    """Jensen–Shannon divergence, base 2, between two share mappings.

    Symmetric and bounded in [0, 1]; 0 for identical distributions, 1
    for distributions with disjoint support.  Inputs are treated as
    already-normalized share maps; missing keys contribute share 0.
    """
    divergence = 0.0
    for key in sorted(set(first) | set(second)):
        p = first.get(key, 0.0)
        q = second.get(key, 0.0)
        mid = (p + q) / 2.0
        if p > 0.0:
            divergence += 0.5 * p * math.log2(p / mid)
        if q > 0.0:
            divergence += 0.5 * q * math.log2(q / mid)
    # clamp the tiny negative float noise identical distributions make
    return min(max(divergence, 0.0), 1.0)


class DriftDetector:
    """Thresholded weight + structural drift checks over a monitor.

    ``weight_threshold`` applies to the Jensen–Shannon divergence
    (L1 is reported alongside for interpretability);
    ``structural_threshold`` to the count of added+removed digests.
    ``min_requests`` observations must have been ingested before any
    check can alert — an empty monitor is "no signal", not drift.
    """

    def __init__(self, monitor, weight_threshold=0.1,
                 structural_threshold=1, hysteresis=0.8,
                 min_requests=10, min_advised_share=MIN_ADVISED_SHARE):
        if not 0.0 < hysteresis <= 1.0:
            raise ValueError(
                f"hysteresis must be in (0, 1], got {hysteresis!r}")
        self.monitor = monitor
        self.weight_threshold = float(weight_threshold)
        self.structural_threshold = int(structural_threshold)
        self.hysteresis = float(hysteresis)
        self.min_requests = int(min_requests)
        self.min_advised_share = float(min_advised_share)
        self.weight_alert = False
        self.structural_alert = False
        #: every check's record, in check order (the drift timeline)
        self.history = []
        #: alert state transitions, in order
        self.alerts = []

    # -- single check --------------------------------------------------------

    def check(self):
        """Compare observed vs advised now; update alert state.

        Returns the check record (also appended to :attr:`history`).
        """
        monitor = self.monitor
        advised = monitor.advised_distribution()
        observed = monitor.observed_distribution()
        warmed_up = monitor.requests >= self.min_requests and observed
        if warmed_up:
            l1 = l1_distance(advised, observed)
            js = js_divergence(advised, observed)
            added = sorted(digest for digest, share in observed.items()
                           if digest not in advised
                           and share > VANISH_SHARE)
            removed = sorted(
                digest for digest, share in advised.items()
                if share >= self.min_advised_share
                and observed.get(digest, 0.0) <= VANISH_SHARE)
        else:
            l1 = js = 0.0
            added = removed = []
        record = {
            "time": round(monitor.clock, 6),
            "requests": monitor.requests,
            "l1": round(l1, 6),
            "js": round(js, 6),
            "structural_added": added,
            "structural_removed": removed,
        }
        self._update_alerts(record)
        record["weight_alert"] = self.weight_alert
        record["structural_alert"] = self.structural_alert
        self.history.append(record)
        self._emit_gauges(record)
        return record

    def _update_alerts(self, record):
        sink = telemetry.current()
        js = record["js"]
        if not self.weight_alert and js >= self.weight_threshold:
            self.weight_alert = True
            self._transition("weight_alert", record,
                             js=js, l1=record["l1"],
                             threshold=self.weight_threshold)
            sink.count("monitor.weight_alerts")
        elif self.weight_alert \
                and js < self.weight_threshold * self.hysteresis:
            self.weight_alert = False
            self._transition("weight_alert_cleared", record, js=js)
        structural = (len(record["structural_added"])
                      + len(record["structural_removed"]))
        if not self.structural_alert \
                and structural >= self.structural_threshold:
            self.structural_alert = True
            self._transition(
                "structural_alert", record,
                added=len(record["structural_added"]),
                removed=len(record["structural_removed"]),
                threshold=self.structural_threshold)
            sink.count("monitor.structural_alerts")
        elif self.structural_alert and structural == 0:
            self.structural_alert = False
            self._transition("structural_alert_cleared", record)

    def _transition(self, name, record, **attributes):
        entry = {"event": name, "time": record["time"],
                 "requests": record["requests"]}
        entry.update({key: attributes[key] for key in sorted(attributes)})
        self.alerts.append(entry)
        telemetry.current().event(f"monitor.{name}", time=record["time"],
                                  requests=record["requests"],
                                  **attributes)

    def _emit_gauges(self, record):
        sink = telemetry.current()
        if not sink.enabled:
            return
        sink.count("monitor.checks")
        sink.gauge("monitor.weight_drift_js", record["js"])
        sink.gauge("monitor.weight_drift_l1", record["l1"])
        sink.gauge("monitor.structural_added",
                   len(record["structural_added"]))
        sink.gauge("monitor.structural_removed",
                   len(record["structural_removed"]))
        sink.gauge("monitor.requests", record["requests"])

    # -- read-out ------------------------------------------------------------

    @property
    def drifted(self):
        """True while either alert is raised."""
        return self.weight_alert or self.structural_alert

    def as_dict(self):
        """Drift section of the monitor document."""
        latest = self.history[-1] if self.history else None
        return {
            "checks": len(self.history),
            "weight_threshold": self.weight_threshold,
            "structural_threshold": self.structural_threshold,
            "hysteresis": self.hysteresis,
            "weight_alert": self.weight_alert,
            "structural_alert": self.structural_alert,
            "latest": latest,
            "timeline": list(self.history),
            "alerts": list(self.alerts),
        }
