"""The RUBiS browsing→bidding drift demonstration.

The canonical drift scenario from the auction benchmark: a site is
advised for its quiet *browsing* mix (read-heavy, no writes), then the
auction heats up and traffic shifts to the *bidding* mix (bids, buys,
comments appear; the read profile changes).  The demo advises on the
browsing mix, replays browsing traffic followed by bidding traffic
through a monitored execution engine, and shows the weight-drift alert
firing mid-shift plus the regret of keeping the browsing-optimized
schema under the observed mix.

The advised workload is the browsing mix with an epsilon floor: write
statements carry a tiny weight instead of zero, so the advisor plans
(and the executor can serve) every statement — the realistic "we know
writes exist, they are just rare right now" posture.  Without the
floor, zero-weight statements would have no plans and the bidding
phase could not execute at all.
"""

from __future__ import annotations

from repro.advisor import Advisor
from repro.backend.executor import ExecutionEngine
from repro.monitor.document import monitor_document
from repro.monitor.drift import DriftDetector
from repro.monitor.monitor import WorkloadMonitor
from repro.monitor.regret import estimate_regret
from repro.profile import request_schedule
from repro.randgen.data import BindingGenerator

__all__ = ["EPSILON_WEIGHT", "drift_demo", "epsilon_floored_workload"]

#: weight floor for statements absent from the advised mix
EPSILON_WEIGHT = 0.002

#: name of the floored mix the demo advises on
LIVE_MIX = "browsing_live"


def epsilon_floored_workload(workload, base_mix, live_mix=LIVE_MIX,
                             epsilon=EPSILON_WEIGHT):
    """Clone ``workload`` with a ``live_mix`` flooring zero weights.

    Every statement keeps its ``base_mix`` weight when positive and
    gets ``epsilon`` otherwise, so the advisor plans all of them.
    """
    floored = workload.clone()
    for label, statement in floored.statements.items():
        weight = floored.weight(statement, mix=base_mix)
        floored.set_weight(label, weight if weight > 0 else epsilon,
                           mix=live_mix)
    return floored.with_mix(live_mix)


def drift_demo(half_life=60.0, requests=400, checkpoint_every=20,
               weight_threshold=0.1, structural_threshold=1,
               seed=0, jobs=None, users=2000, capture=None):
    """Run the browsing→bidding shift; return the monitor document.

    The first half of ``requests`` replays the browsing mix (the mix
    the schema was advised for), the second half the bidding mix; the
    detector checks every ``checkpoint_every`` requests.  With the
    default ``half_life`` of 60 requests the browsing phase decays away
    within the bidding phase, so the observed distribution converges on
    the bidding mix and the Jensen–Shannon alert fires mid-shift.

    A ``capture`` dict, when given, is filled with the live objects
    (advisor, workload, recommendation, monitor) so callers can feed
    the observation into :func:`repro.windows.replan_from_monitor`.
    """
    from repro.rubis import generate_dataset, rubis_model, rubis_workload

    model = rubis_model(users=users)
    workload = rubis_workload(model, mix="browsing")
    advised = epsilon_floored_workload(workload, "browsing")
    dataset = generate_dataset(model, seed=seed + 7)
    dataset.sync_counts()

    advisor = Advisor(model)
    prepared = advisor.prepare(advised, jobs=jobs)
    recommendation = advisor.recommend_prepared(prepared, jobs=jobs)

    monitor = WorkloadMonitor(advised, half_life=half_life)
    # warm up for a full schedule round before alerting: the replay
    # schedule seeds every statement (epsilon ones included) with one
    # request, so the first few dozen observations over-represent rare
    # statements relative to their advised share
    detector = DriftDetector(monitor, weight_threshold=weight_threshold,
                             structural_threshold=structural_threshold,
                             min_requests=min(requests // 4, 100))
    engine = ExecutionEngine(model, recommendation, dataset,
                             monitor=monitor)
    engine.load()
    generator = BindingGenerator(dataset, seed=seed, null_rate=0.0)

    first = requests // 2
    phases = (("browsing", first), ("bidding", requests - first))
    executed = 0
    alert_request = None
    for mix, count in phases:
        schedule = request_schedule(advised.with_mix(mix), count)
        for label in schedule:
            statement = advised.statements[label]
            engine.execute(label, generator.bindings_for(statement))
            executed += 1
            if executed % checkpoint_every == 0:
                record = detector.check()
                if alert_request is None and record["weight_alert"]:
                    alert_request = executed
    final = detector.check()
    if alert_request is None and final["weight_alert"]:
        alert_request = executed

    regret = estimate_regret(advisor, advised, recommendation, monitor,
                             jobs=jobs)
    if capture is not None:
        capture.update(advisor=advisor, workload=advised,
                       recommendation=recommendation, monitor=monitor)
    meta = {
        "source": "rubis-drift-demo",
        "advised_mix": LIVE_MIX,
        "phases": [{"mix": mix, "requests": count}
                   for mix, count in phases],
        "checkpoint_every": checkpoint_every,
        "seed": seed,
        "users": users,
        "alert_request": alert_request,
    }
    return monitor_document(monitor, detector, regret=regret, meta=meta)
