"""Plain-text rendering of evaluation results.

The paper's figures are bar charts (Fig 11, Fig 12) and a stacked area
chart (Fig 13).  These helpers render the same data as ASCII charts so
benchmark output is readable in a terminal and diffable in result
files; no plotting dependency is needed.
"""

from __future__ import annotations

import math

from repro.exceptions import NoseError

_BAR = "█"
_HALF = "▌"


def _scale(value, maximum, width):
    if maximum <= 0:
        return 0.0
    return max(value, 0.0) / maximum * width


def bar_chart(rows, width=40, log_scale=False, unit=""):
    """Render ``{label: value}`` (or pairs) as a horizontal bar chart.

    ``log_scale`` mimics the paper's Fig 11 log-axis: bars are sized by
    log10 of the value, which keeps 100x spreads readable.
    """
    rows = list(rows.items()) if isinstance(rows, dict) else list(rows)
    if not rows:
        raise NoseError("nothing to chart")
    label_width = max(len(str(label)) for label, _ in rows)
    values = [value for _, value in rows]
    positives = [value for value in values if value > 0]
    if log_scale and positives:
        floor = min(positives) / 10
        transform = (lambda value:
                     math.log10(max(value, floor) / floor))
    else:
        def transform(value):
            return value
    maximum = max(transform(value) for value in values)
    lines = []
    for label, value in rows:
        length = _scale(transform(value), maximum, width)
        bar = _BAR * int(length)
        if length - int(length) >= 0.5:
            bar += _HALF
        lines.append(f"{str(label):<{label_width}}  {bar:<{width}} "
                     f"{value:.3f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(table, width=30, log_scale=False, unit=""):
    """Render ``{row: {series: value}}`` as grouped horizontal bars —
    the shape of Fig 11/Fig 12 (one group per transaction or mix)."""
    if not table:
        raise NoseError("nothing to chart")
    lines = []
    for group, row in table.items():
        lines.append(f"{group}:")
        if not row:
            lines.append("  (no data)")
            continue
        chart = bar_chart(row, width=width, log_scale=log_scale,
                          unit=unit)
        for line in chart.splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)


def timing_table(rows, stages=("enumeration", "planning",
                               "cost_calculation", "pruning",
                               "bip_construction", "bip_solving",
                               "total")):
    """Render ``{label: AdvisorTiming}`` as an aligned stage table.

    One row per recommendation run, one column per pipeline stage plus
    the cache-hit counter and the delta-reuse accounting (statements
    served from the artifact store vs actually re-planned) — the shape
    the CLI's ``--repeat-tuning`` report and the pipeline benchmark use
    to put cold and warm runs side by side.
    """
    rows = list(rows.items()) if isinstance(rows, dict) else list(rows)
    if not rows:
        raise NoseError("nothing to tabulate")
    label_width = max(len(str(label)) for label, _ in rows)
    header = "  ".join(f"{stage:>16}" for stage in stages)
    lines = [f"{'':<{label_width}}  {header}  {'cache_hits':>10}"
             f"  {'reused':>8}  {'replanned':>10}"]
    for label, timing in rows:
        cells = "  ".join(f"{getattr(timing, stage, 0.0):>16.4f}"
                          for stage in stages)
        hits = getattr(timing, "cache_hits", 0)
        reused = getattr(timing, "reused_statements", 0)
        replanned = getattr(timing, "replanned_statements", 0)
        lines.append(f"{str(label):<{label_width}}  {cells}  {hits:>10}"
                     f"  {reused:>8}  {replanned:>10}")
    return "\n".join(lines)


def stacked_series(rows, components, width=50, unit="s"):
    """Render Fig 13-style stacked horizontal bars.

    ``rows`` maps an x-label (scale factor) to ``{component: value}``;
    components are stacked in the given order with distinct fills.
    """
    fills = ["█", "▓", "▒", "░"]
    if len(components) > len(fills):
        raise NoseError(f"at most {len(fills)} stacked components")
    if not rows:
        raise NoseError("nothing to chart")
    totals = {label: sum(row.get(part, 0.0) for part in components)
              for label, row in rows.items()}
    maximum = max(totals.values())
    label_width = max(len(str(label)) for label in rows)
    lines = []
    for label, row in rows.items():
        bar = ""
        for fill, part in zip(fills, components):
            length = int(round(_scale(row.get(part, 0.0), maximum,
                                      width)))
            bar += fill * length
        lines.append(f"{str(label):<{label_width}}  {bar:<{width}} "
                     f"{totals[label]:.2f}{unit}")
    legend = "  ".join(f"{fill}={part}"
                       for fill, part in zip(fills, components))
    lines.append(f"({legend})")
    return "\n".join(lines)


# -- telemetry run reports ----------------------------------------------------


def span_tree(spans, indent=0):
    """Render serialized span records (``Span.as_dict`` shape) as an
    indented tree with total and self wall time per span."""
    lines = []
    for record in spans:
        total = record.get("total_seconds", 0.0)
        self_seconds = record.get("self_seconds", total)
        name = f"{'  ' * indent}{record['name']}"
        suffix = ""
        attributes = record.get("attributes")
        if attributes:
            pairs = ", ".join(f"{key}={attributes[key]}"
                              for key in sorted(attributes))
            suffix = f"  [{pairs}]"
        lines.append(f"{name:<40} {total:>10.4f}s "
                     f"{self_seconds:>10.4f}s{suffix}")
        lines.extend(span_tree(record.get("children", ()),
                               indent + 1).splitlines())
    return "\n".join(lines)


def metrics_summary(metrics, top=5):
    """Render a metrics snapshot: counters and gauges as aligned rows,
    plus the ``top`` largest histograms (by observation count) as bar
    charts over their buckets."""
    lines = []
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    scalars = [(name, counters[name]) for name in sorted(counters)]
    scalars += [(name, gauges[name]) for name in sorted(gauges)]
    if scalars:
        width = max(len(name) for name, _ in scalars)
        for name, value in scalars:
            rendered = f"{value:.4f}" if isinstance(value, float) \
                else str(value)
            lines.append(f"{name:<{width}}  {rendered:>12}")
    histograms = metrics.get("histograms", {})
    ranked = sorted(histograms,
                    key=lambda name: -histograms[name]["count"])[:top]
    for name in sorted(ranked):
        histogram = histograms[name]
        lines.append("")
        quantiles = "".join(
            f", {key}={histogram[key]:g}" for key in ("p50", "p95",
                                                      "p99")
            if histogram.get(key) is not None)
        lines.append(f"{name} (count={histogram['count']}, "
                     f"min={_fmt(histogram['min'])}, "
                     f"max={_fmt(histogram['max'])}{quantiles})")
        labels = [f"<= {bound}" for bound in histogram["boundaries"]]
        labels.append(f"> {histogram['boundaries'][-1]}"
                      if histogram["boundaries"] else "all")
        rows = [(label, count)
                for label, count in zip(labels, histogram["counts"])
                if count]
        if rows:
            for line in bar_chart(rows, width=30).splitlines():
                lines.append(f"  {line}")
        else:
            lines.append("  (no observations)")
    return "\n".join(lines)


# -- explain documents and recommendation diffs -------------------------------


def _fmt(value):
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 1e6 else f"{value:.4g}"
    return str(value)


def _provenance_lines(chain):
    """Render a derivation chain (``repro.explain`` record dicts)."""
    lines = []
    for depth, record in enumerate(chain):
        rules = ", ".join(record.get("rules", ())) or "?"
        sources = ", ".join(record.get("sources", ()))
        via = "" if depth == 0 else f"via {record['index']}: "
        arrow = f" <- {sources}" if sources else ""
        lines.append(f"{'  ' * min(depth, 1)}{via}{rules}{arrow}")
    return lines


def _explain_statement_lines(label, record):
    lines = [f"{label} ({record.get('kind', 'statement')}, "
             f"weight {_fmt(record.get('weight'))}, "
             f"cost {_fmt(record.get('cost'))}, "
             f"weighted {_fmt(record.get('weighted_cost'))})"]
    funnel = []
    if "alternatives_enumerated" in record:
        funnel.append(f"{record['alternatives_enumerated']} enumerated")
    if "alternatives_after_pruning" in record:
        funnel.append(f"{record['alternatives_after_pruning']} "
                      f"after pruning")
    if "alternatives_in_solver" in record:
        funnel.append(f"{record['alternatives_in_solver']} in solver")
    header = "  plan"
    if funnel:
        header += f" ({' -> '.join(funnel)})"
    if record.get("best_rejected_cost") is not None:
        header += (f", best rejected alternative cost "
                   f"{_fmt(record['best_rejected_cost'])}")
    plan = record.get("plan")
    if plan is not None:
        lines.append(header + ":")
        for number, step in enumerate(plan.get("steps", ()), start=1):
            terms = step.get("terms", {})
            rendered = " ".join(f"{name}={_fmt(terms[name])}"
                                for name in sorted(terms))
            suffix = f"  [{rendered}]" if rendered else ""
            lines.append(f"    {number}. {step['op']}  "
                         f"cost={_fmt(step.get('cost'))}{suffix}")
    for maintenance in record.get("maintenance", ()):
        lines.append(f"  maintains {maintenance['index']} "
                     f"(update cost {_fmt(maintenance['update_cost'])}, "
                     f"write amplification "
                     f"{_fmt(maintenance['write_amplification'])}):")
        for step in maintenance.get("steps", ()):
            lines.append(f"    {step['op']}  "
                         f"cost={_fmt(step.get('cost'))}")
        for support in maintenance.get("support_plans", ()):
            lines.append(f"    support plan {support['signature']}  "
                         f"cost={_fmt(support.get('cost'))}")
    return lines


def explain_report(document, statement=None):
    """Render an explain document (``repro.explain.explain_document``).

    Shows the recommended column families with selection status and
    derivation provenance, then each statement's chosen plan as an
    annotated step tree with per-step cost terms and the
    alternatives-considered funnel.  ``statement`` narrows the report
    to one statement label.
    """
    if statement is not None:
        record = document.get("statements", {}).get(statement)
        if record is None:
            raise NoseError(
                f"no statement {statement!r} in the explain document")
        return "\n".join(_explain_statement_lines(statement, record))
    indexes = document.get("indexes", [])
    lines = [f"explain: {len(indexes)} column families, total cost "
             f"{_fmt(document.get('total_cost'))}"]
    for entry in indexes:
        status = entry.get("status", "chosen")
        lines.append(f"  {entry['key']}  {entry.get('triple', '')}  "
                     f"[{status}]")
        for line in _provenance_lines(entry.get("provenance", ())):
            lines.append(f"    {line}")
    for label, record in document.get("statements", {}).items():
        lines.append("")
        lines.extend(_explain_statement_lines(label, record))
    return "\n".join(lines)


def diff_report(diff):
    """Render a recommendation diff
    (``repro.explain.diff_recommendations``)."""
    total = diff.get("total_cost", {})
    pct = total.get("regression_pct")
    pct_text = f"{pct:+.2f}%" if pct is not None else "n/a"
    lines = ["recommendation diff",
             f"  total cost: {_fmt(total.get('base'))} -> "
             f"{_fmt(total.get('other'))}  "
             f"(delta {_fmt(total.get('delta'))}, {pct_text})"]
    added = diff.get("indexes_added", [])
    dropped = diff.get("indexes_dropped", [])
    lines.append(f"  indexes added ({len(added)}):")
    for entry in added:
        lines.append(f"    + {entry['key']}  {entry.get('triple', '')}")
    lines.append(f"  indexes dropped ({len(dropped)}):")
    for entry in dropped:
        lines.append(f"    - {entry['key']}  {entry.get('triple', '')}")
    statements = diff.get("statements", {})
    lines.append(f"  statement changes ({len(statements)}):")
    for label in sorted(statements):
        record = statements[label]
        delta = record.get("delta")
        delta_text = f" ({delta:+.4f})" if delta is not None else ""
        plan_text = ", plan changed" if record.get("plan_changed") \
            else ""
        lines.append(f"    {label}: cost "
                     f"{_fmt(record.get('base_cost'))} -> "
                     f"{_fmt(record.get('other_cost'))}"
                     f"{delta_text}{plan_text}")
    return "\n".join(lines)


def render_run_report(report, top=5):
    """Full ASCII rendering of a :class:`repro.telemetry.RunReport`."""
    meta = report.meta
    lines = ["run report"]
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]}")
    if report.spans:
        lines.append("")
        lines.append(f"{'span':<40} {'total':>11} {'self':>11}")
        lines.append(span_tree(report.spans))
    if any(report.metrics.get(section)
           for section in ("counters", "gauges", "histograms")):
        lines.append("")
        lines.append(metrics_summary(report.metrics, top=top))
    events = getattr(report, "events", None)
    if events:
        lines.append("")
        lines.append(f"events ({len(events)}):")
        for event in events:
            attributes = event.get("attributes")
            suffix = ""
            if attributes:
                pairs = ", ".join(f"{key}={attributes[key]}"
                                  for key in sorted(attributes))
                suffix = f"  [{pairs}]"
            lines.append(f"  {event.get('seconds', 0.0):>10.4f}s  "
                         f"{event.get('name')}{suffix}")
    return "\n".join(lines)


def verify_report(report):
    """Plain-text rendering of a differential-verification report.

    ``report`` is the dict produced by
    :func:`repro.verify.verify_recommendation` (or the fuzz variant
    assembled by the ``verify`` CLI subcommand): per-protocol check
    counts, divergences, and shrunk reproducers.
    """
    lines = [f"differential verification (seed {report.get('seed')})"]
    for protocol, entry in sorted(report.get("protocols", {}).items()):
        status = "OK" if entry.get("ok") \
            else f"{len(entry.get('divergences', []))} divergence(s)"
        lines.append(f"  {protocol:<8} {entry.get('checks', 0):>4} "
                     f"checks  {status}")
        for divergence in entry.get("divergences", []):
            lines.append(f"    {divergence.get('kind')} "
                         f"[{divergence.get('label')}]: "
                         f"{divergence.get('message')}")
        shrunk = entry.get("shrunk")
        if shrunk:
            rows = sum(shrunk.get("dataset_rows", {}).values())
            lines.append(
                f"    shrunk reproducer: "
                f"{len(shrunk.get('requests', []))} request(s), "
                f"{rows} dataset row(s), "
                f"{shrunk.get('replays', 0)} replays")
            for request in shrunk.get("requests", []):
                lines.append(f"      {request.get('label')}: "
                             f"{request.get('statement')} "
                             f"{request.get('params')}")
    for trial in report.get("trials", []):
        status = "OK" if trial.get("ok") \
            else f"{len(trial.get('divergences', []))} divergence(s)"
        lines.append(f"  trial seed {trial.get('seed')} "
                     f"[{trial.get('protocol')}] "
                     f"{trial.get('checks', 0):>4} checks  {status}")
        for divergence in trial.get("divergences", []):
            lines.append(f"    {divergence.get('kind')} "
                         f"[{divergence.get('label')}]: "
                         f"{divergence.get('message')}")
    lines.append("verdict: " + ("OK" if report.get("ok")
                                else "DIVERGED"))
    return "\n".join(lines)


def profile_report(document):
    """Plain-text rendering of a "nose-profile/1" accuracy report
    (``repro.profile.accuracy_report``): the workload-level summary,
    a per-statement measured-vs-predicted table, per-column-family
    operation totals, and the calibration-capture summary.
    """
    workload = document.get("workload", {})
    meta = document.get("meta", {})
    lines = ["execution profile"]
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]}")
    lines.append(
        f"  requests: {workload.get('requests', 0)}, statements "
        f"measured: {workload.get('statements_measured', 0)}, joined "
        f"with predictions: {workload.get('statements_joined', 0)}")
    correlation = workload.get("rank_correlation")
    median = workload.get("median_measured_over_predicted")
    lines.append(f"  rank correlation (predicted cost vs measured "
                 f"latency): {_fmt(correlation)}")
    lines.append(f"  median measured/predicted ratio: {_fmt(median)}")

    statements = document.get("statements", {})
    if statements:
        def cell(value, width=8):
            return f"{_fmt(value):>{width}}"

        label_width = max(len(label) for label in statements)
        lines.append("")
        lines.append(f"{'statement':<{label_width}}  {'n':>5} "
                     f"{'mean ms':>9} {'p50':>8} {'p95':>8} {'p99':>8} "
                     f"{'predicted':>10} {'ratio':>8} {'norm':>7}")
        for label in sorted(statements):
            record = statements[label]
            measured = record.get("measured", {})
            predicted = record.get("predicted", {})
            lines.append(
                f"{label:<{label_width}}  "
                f"{measured.get('requests', 0):>5} "
                f"{cell(measured.get('mean_ms'), 9)} "
                f"{cell(measured.get('p50_ms'))} "
                f"{cell(measured.get('p95_ms'))} "
                f"{cell(measured.get('p99_ms'))} "
                f"{cell(predicted.get('cost'), 10)} "
                f"{cell(record.get('measured_over_predicted'))} "
                f"{cell(record.get('normalized_ratio'), 7)}")

    worst = workload.get("worst_divergences", [])
    if worst:
        lines.append("")
        lines.append("worst divergences (normalized ratio farthest "
                     "from 1.0):")
        for entry in worst:
            lines.append(
                f"  {entry.get('label')}: normalized ratio "
                f"{_fmt(entry.get('normalized_ratio'))} "
                f"(predicted {_fmt(entry.get('predicted_cost'))}, "
                f"measured mean "
                f"{_fmt(entry.get('measured_mean_ms'))} ms)")

    column_families = document.get("column_families", {})
    if column_families:
        lines.append("")
        lines.append("column families:")
        for name in sorted(column_families):
            for kind in sorted(column_families[name]):
                record = column_families[name][kind]
                lines.append(
                    f"  {name} {kind}: {record.get('requests', 0)} "
                    f"request(s), {record.get('rows', 0)} row(s), "
                    f"p50 {_fmt(record.get('p50_ms'))} ms, "
                    f"p95 {_fmt(record.get('p95_ms'))} ms, "
                    f"p99 {_fmt(record.get('p99_ms'))} ms")

    calibration = document.get("calibration", {})
    if calibration:
        lines.append("")
        lines.append(
            f"calibration samples captured: "
            f"{calibration.get('captured', 0)} "
            f"(dropped {calibration.get('dropped', 0)})")
    return "\n".join(lines)


def monitor_report(document, width=32, top=12):
    """Plain-text rendering of a "nose-monitor/1" drift document
    (``repro.monitor.monitor_document``): ingestion summary, the ASCII
    drift timeline with alert markers, structural changes, the alert
    log, decayed statement-weight estimates, and the regret section.
    """
    meta = document.get("meta", {})
    ingest = document.get("ingest", {})
    lines = ["workload drift monitor"]
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]}")
    lines.append(
        f"  ingested: {ingest.get('requests', 0)} request(s), "
        f"{ingest.get('statements_tracked', 0)} statement(s) tracked, "
        f"half-life {_fmt(ingest.get('half_life'))}, "
        f"clock {_fmt(ingest.get('clock'))}")

    drift = document.get("drift")
    if drift:
        weight_state = "ALERT" if drift.get("weight_alert") else "ok"
        structural_state = "ALERT" if drift.get("structural_alert") \
            else "ok"
        lines.append(
            f"  drift: {drift.get('checks', 0)} check(s), weight "
            f"{weight_state} (JS threshold "
            f"{_fmt(drift.get('weight_threshold'))}), structural "
            f"{structural_state} (threshold "
            f"{drift.get('structural_threshold')})")
        timeline = drift.get("timeline", [])
        if timeline:
            threshold = drift.get("weight_threshold") or 0.0
            peak = max(max(record.get("js", 0.0)
                           for record in timeline),
                       threshold * 1.5, 1e-9)
            mark = int(round(_scale(threshold, peak, width))) \
                if threshold else None
            lines.append("")
            lines.append("drift timeline (JS divergence, '|' = "
                         "threshold, '*' = alert active):")
            lines.append(f"{'time':>10} {'requests':>9} {'js':>8} "
                         f"{'l1':>8}")
            for record in timeline:
                js = record.get("js", 0.0)
                length = int(round(_scale(js, peak, width)))
                bar = list("█" * length + " " * (width - length))
                if mark is not None and 0 <= mark < width:
                    if bar[mark] == " ":
                        bar[mark] = "|"
                flag = " *" if record.get("weight_alert") \
                    or record.get("structural_alert") else ""
                lines.append(f"{_fmt(record.get('time')):>10} "
                             f"{record.get('requests', 0):>9} "
                             f"{js:>8.4f} "
                             f"{record.get('l1', 0.0):>8.4f}  "
                             f"{''.join(bar)}{flag}")
        else:
            lines.append("  (no drift checks recorded)")
        structural = drift.get("structural")
        if structural and (structural.get("added")
                           or structural.get("removed")):
            lines.append("")
            lines.append("structural drift:")
            for direction, sign in (("added", "+"), ("removed", "-")):
                for digest in sorted(structural.get(direction, {})):
                    labels = ", ".join(
                        structural[direction][digest]) or "?"
                    lines.append(f"  {sign} {digest}  ({labels})")
        alerts = drift.get("alerts", [])
        if alerts:
            lines.append("")
            lines.append(f"alerts ({len(alerts)}):")
            for alert in alerts:
                detail = ", ".join(
                    f"{key}={_fmt(alert[key])}" for key in sorted(alert)
                    if key not in ("event", "time", "requests"))
                suffix = f"  [{detail}]" if detail else ""
                lines.append(
                    f"  [time {_fmt(alert.get('time'))}, request "
                    f"{alert.get('requests')}] "
                    f"{alert.get('event')}{suffix}")

    estimates = document.get("estimates", {})
    if estimates:
        ranked = sorted(estimates,
                        key=lambda label: (-estimates[label]["weight"],
                                           label))[:top]
        rows = [(label, estimates[label]["weight"]) for label in ranked]
        lines.append("")
        lines.append(f"decayed weight estimates (top {len(rows)} of "
                     f"{len(estimates)}):")
        for line in bar_chart(rows, width=width).splitlines():
            lines.append(f"  {line}")
    else:
        lines.append("  (no statements observed)")

    regret = document.get("regret")
    if regret:
        if regret.get("regret") is None:
            lines.append("")
            lines.append("regret: not estimated (no observed traffic)")
        else:
            lines.append("")
            lines.append(
                f"regret under observed mix: stale cost "
                f"{_fmt(regret.get('stale_cost'))} vs re-advised "
                f"{_fmt(regret.get('fresh_cost'))} -> regret "
                f"{_fmt(regret.get('regret'))} "
                f"({_fmt(regret.get('regret_pct'))}%)")
            lines.append(
                f"  re-advising chooses "
                f"{regret.get('fresh_indexes')} column families "
                f"(current schema has {regret.get('stale_indexes')})")
    return "\n".join(lines)


def windows_report(document):
    """Plain-text rendering of a "nose-windows/1" schedule document
    (``repro.windows.windows_document``): the schedule, each window's
    schema as a diff against the previous window (created / dropped /
    kept column families with migration volume), the per-window cost
    ledger, and the baseline comparison.
    """
    meta = document.get("meta", {})
    totals = document.get("totals", {})
    windows = document.get("windows", [])
    lines = ["windowed schema schedule"]
    for key in sorted(meta):
        lines.append(f"  {key}: {meta[key]}")
    schedule = ", ".join(
        f"{window.get('mix')}:{_fmt(window.get('requests'))}"
        for window in document.get("schedule", []))
    lines.append(f"  schedule: {schedule}")
    initial = document.get("initial", [])
    lines.append(f"  initial schema: {len(initial)} column families")
    model = document.get("migration_model", {})
    lines.append(
        f"  migration pricing: {_fmt(model.get('row_cost'))}/row, "
        f"{_fmt(model.get('byte_cost'))}/byte")

    for window in windows:
        migration = window.get("migration", {})
        created = migration.get("create", [])
        dropped = migration.get("drop", [])
        lines.append("")
        lines.append(
            f"window {window.get('label')} ({window.get('mix')} x "
            f"{_fmt(window.get('requests'))}): "
            f"{len(window.get('indexes', []))} column families, "
            f"serving {_fmt(window.get('serving_cost'))}, "
            f"migration {_fmt(migration.get('cost'))}")
        if created or dropped:
            lines.append(
                f"  migrate in: +{len(created)} -{len(dropped)} "
                f"={migration.get('keep', 0)}  "
                f"(~{_fmt(migration.get('rows_to_load'))} rows, "
                f"{_fmt((migration.get('bytes_to_load') or 0.0) / 1e6)}"
                f" MB to load)")
            for key in created:
                lines.append(f"    + {key}")
            for key in dropped:
                lines.append(f"    - {key}")
        else:
            lines.append(f"  schema held "
                         f"(={migration.get('keep', 0)}, no migration)")

    lines.append("")
    lines.append(
        f"totals: serving {_fmt(totals.get('serving_cost'))} + "
        f"migration {_fmt(totals.get('migration_cost'))} = "
        f"{_fmt(totals.get('total_cost'))}")
    baselines = document.get("baselines", {})
    if baselines:
        lines.append("baselines (same evaluator):")
        total = totals.get("total_cost")
        for name in sorted(baselines):
            baseline = baselines[name]
            base_total = baseline.get("total_cost")
            if total is not None and base_total:
                saved = 100.0 * (base_total - total) / base_total
                suffix = f"  (windowed saves {saved:.2f}%)"
            else:
                suffix = ""
            lines.append(
                f"  {name}: serving "
                f"{_fmt(baseline.get('serving_cost'))} + migration "
                f"{_fmt(baseline.get('migration_cost'))} = "
                f"{_fmt(base_total)}{suffix}")
    return "\n".join(lines)
