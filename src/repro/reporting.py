"""Plain-text rendering of evaluation results.

The paper's figures are bar charts (Fig 11, Fig 12) and a stacked area
chart (Fig 13).  These helpers render the same data as ASCII charts so
benchmark output is readable in a terminal and diffable in result
files; no plotting dependency is needed.
"""

from __future__ import annotations

import math

from repro.exceptions import NoseError

_BAR = "█"
_HALF = "▌"


def _scale(value, maximum, width):
    if maximum <= 0:
        return 0.0
    return max(value, 0.0) / maximum * width


def bar_chart(rows, width=40, log_scale=False, unit=""):
    """Render ``{label: value}`` (or pairs) as a horizontal bar chart.

    ``log_scale`` mimics the paper's Fig 11 log-axis: bars are sized by
    log10 of the value, which keeps 100x spreads readable.
    """
    rows = list(rows.items()) if isinstance(rows, dict) else list(rows)
    if not rows:
        raise NoseError("nothing to chart")
    label_width = max(len(str(label)) for label, _ in rows)
    values = [value for _, value in rows]
    if log_scale:
        floor = min(value for value in values if value > 0) / 10
        transform = (lambda value:
                     math.log10(max(value, floor) / floor))
    else:
        def transform(value):
            return value
    maximum = max(transform(value) for value in values)
    lines = []
    for label, value in rows:
        length = _scale(transform(value), maximum, width)
        bar = _BAR * int(length)
        if length - int(length) >= 0.5:
            bar += _HALF
        lines.append(f"{str(label):<{label_width}}  {bar:<{width}} "
                     f"{value:.3f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(table, width=30, log_scale=False, unit=""):
    """Render ``{row: {series: value}}`` as grouped horizontal bars —
    the shape of Fig 11/Fig 12 (one group per transaction or mix)."""
    if not table:
        raise NoseError("nothing to chart")
    lines = []
    for group, row in table.items():
        lines.append(f"{group}:")
        chart = bar_chart(row, width=width, log_scale=log_scale,
                          unit=unit)
        for line in chart.splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)


def timing_table(rows, stages=("enumeration", "planning",
                               "cost_calculation", "pruning",
                               "bip_construction", "bip_solving",
                               "total")):
    """Render ``{label: AdvisorTiming}`` as an aligned stage table.

    One row per recommendation run, one column per pipeline stage plus
    the cache-hit counter — the shape the CLI's ``--repeat-tuning``
    report and the pipeline benchmark use to put cold and warm runs
    side by side.
    """
    rows = list(rows.items()) if isinstance(rows, dict) else list(rows)
    if not rows:
        raise NoseError("nothing to tabulate")
    label_width = max(len(str(label)) for label, _ in rows)
    header = "  ".join(f"{stage:>16}" for stage in stages)
    lines = [f"{'':<{label_width}}  {header}  {'cache_hits':>10}"]
    for label, timing in rows:
        cells = "  ".join(f"{getattr(timing, stage, 0.0):>16.4f}"
                          for stage in stages)
        hits = getattr(timing, "cache_hits", 0)
        lines.append(f"{str(label):<{label_width}}  {cells}  {hits:>10}")
    return "\n".join(lines)


def stacked_series(rows, components, width=50, unit="s"):
    """Render Fig 13-style stacked horizontal bars.

    ``rows`` maps an x-label (scale factor) to ``{component: value}``;
    components are stacked in the given order with distinct fills.
    """
    fills = ["█", "▓", "▒", "░"]
    if len(components) > len(fills):
        raise NoseError(f"at most {len(fills)} stacked components")
    if not rows:
        raise NoseError("nothing to chart")
    totals = {label: sum(row.get(part, 0.0) for part in components)
              for label, row in rows.items()}
    maximum = max(totals.values())
    label_width = max(len(str(label)) for label in rows)
    lines = []
    for label, row in rows.items():
        bar = ""
        for fill, part in zip(fills, components):
            length = int(round(_scale(row.get(part, 0.0), maximum,
                                      width)))
            bar += fill * length
        lines.append(f"{str(label):<{label_width}}  {bar:<{width}} "
                     f"{totals[label]:.2f}{unit}")
    legend = "  ".join(f"{fill}={part}"
                       for fill, part in zip(fills, components))
    lines.append(f"({legend})")
    return "\n".join(lines)
