"""Designing a schema for your own application, end to end.

Shows the full workflow on a fresh conceptual model (a micro-blogging
application): define entities and relationships, write the workload,
get a recommendation, create the column families in the simulated
record store, load data, and execute the recommended plans — verifying
the results against a direct evaluation over the ground truth.

Run with::

    python examples/custom_application.py
"""

import datetime
import random

from repro import Advisor, Entity, Model, Workload
from repro.backend import Dataset, ExecutionEngine
from repro.model import DateField, IDField, IntegerField, StringField


def build_model(users=2_000, posts_per_user=20):
    model = Model("microblog")
    model.add_entity(Entity("User", count=users)).add_fields(
        IDField("UserID"),
        StringField("Handle", size=12),
        StringField("Bio", size=60),
    )
    model.add_entity(Entity("Post",
                            count=users * posts_per_user)).add_fields(
        IDField("PostID"),
        StringField("Body", size=140),
        DateField("PostedAt", cardinality=10_000),
        IntegerField("Likes", cardinality=1000),
    )
    model.add_entity(Entity("Topic", count=50)).add_fields(
        IDField("TopicID"),
        StringField("TopicName", size=15),
    )
    model.add_relationship("User", "Posts", "Post", "Author")
    model.add_relationship("Topic", "Posts", "Post", "Topic")
    return model.validate()


def build_workload(model):
    workload = Workload(model)
    workload.add_statement(
        "SELECT Post.Body, Post.PostedAt FROM Post.Author "
        "WHERE User.UserID = ?user ORDER BY Post.PostedAt",
        weight=10.0, label="timeline_for_user")
    workload.add_statement(
        "SELECT Post.PostID, Post.Body FROM Post.Topic "
        "WHERE Topic.TopicID = ?topic AND Post.Likes > ?likes LIMIT 20",
        weight=6.0, label="hot_posts_in_topic")
    workload.add_statement(
        "SELECT User.Handle, User.Bio FROM User WHERE User.UserID = ?user",
        weight=8.0, label="profile")
    workload.add_statement(
        "INSERT INTO Post SET PostID = ?, Body = ?body, "
        "PostedAt = ?at, Likes = ?likes "
        "AND CONNECT TO Author(?user), Topic(?topic)",
        weight=3.0, label="publish_post")
    workload.add_statement(
        "UPDATE Post SET Likes = ?likes WHERE Post.PostID = ?post",
        weight=4.0, label="like_post")
    return workload


def load_data(model, seed=5):
    rng = random.Random(seed)
    dataset = Dataset(model)
    users = model.entity("User").count
    posts = model.entity("Post").count
    for user in range(users):
        dataset.add_row("User", {"UserID": user,
                                 "Handle": f"user{user}",
                                 "Bio": f"bio of user {user}"})
    for topic in range(model.entity("Topic").count):
        dataset.add_row("Topic", {"TopicID": topic,
                                  "TopicName": f"topic-{topic}"})
    start = datetime.datetime(2016, 1, 1)
    for post in range(posts):
        dataset.add_row("Post", {
            "PostID": post,
            "Body": f"post number {post}",
            "PostedAt": start + datetime.timedelta(
                minutes=rng.randrange(500_000)),
            "Likes": rng.randrange(1000),
        })
        dataset.connect("User", rng.randrange(users), "Posts", post)
        dataset.connect("Topic", post % 50, "Posts", post)
    return dataset


def main():
    model = build_model()
    workload = build_workload(model)
    advisor = Advisor(model)
    recommendation = advisor.recommend(workload)
    print(recommendation.describe())

    dataset = load_data(model)
    engine = ExecutionEngine(model, recommendation, dataset)
    rows = engine.load()
    print(f"\nLoaded {rows} rows into "
          f"{len(recommendation.indexes)} column families")

    # run the recommended plans and verify against the ground truth
    timeline = workload.statements["timeline_for_user"]
    params = {"user": 42}
    results = engine.execute_query(timeline, params)
    oracle = dataset.evaluate_query(timeline, params)
    got = {tuple(row[field.id] for field in timeline.select)
           for row in results}
    print(f"\ntimeline_for_user(42): {len(results)} posts "
          f"(oracle agrees: {got == oracle})")

    hot = workload.statements["hot_posts_in_topic"]
    results = engine.execute_query(hot, {"topic": 3, "likes": 900})
    print(f"hot_posts_in_topic(3, >900 likes): {len(results)} posts")

    publish = workload.statements["publish_post"]
    engine.execute_update(publish, {
        "PostID": 10_000_000, "body": "hello", "likes": 0,
        "at": datetime.datetime(2016, 6, 1), "user": 42, "topic": 3})
    results = engine.execute_query(timeline, params)
    print(f"after publish_post: timeline has {len(results)} posts")

    print(f"\nSimulated store time so far: "
          f"{engine.store.metrics.simulated_ms:.2f} ms across "
          f"{engine.store.metrics.gets} gets / "
          f"{engine.store.metrics.puts} puts")


if __name__ == "__main__":
    main()
