"""The paper's §VII-A evaluation: RUBiS on three schemas (Fig 11).

Recommends a schema for the RUBiS bidding workload, loads a synthetic
RUBiS dataset into the simulated record store under the NoSE-recommended
schema and under the two hand-written baselines ("normalized" and
"expert"), executes the fourteen user transactions, and prints the mean
simulated response time per transaction — the same rows as Fig 11.

Run with::

    python examples/rubis_evaluation.py [--users 20000] [--iterations 25]
"""

import argparse

from repro import Advisor
from repro.backend import ExecutionEngine
from repro.rubis import (
    RubisParameterGenerator,
    TRANSACTIONS,
    expert_schema,
    generate_dataset,
    normalized_schema,
    rubis_model,
    rubis_workload,
    transaction_weights,
)


def build_engines(model, workload, users):
    """One loaded execution engine per schema."""
    advisor = Advisor(model)
    configurations = {
        "NoSE": (advisor.recommend(workload), False, "nose"),
        "Normalized": (advisor.plan_for_schema(
            workload, normalized_schema(model)), False, "nose"),
        "Expert": (advisor.plan_for_schema(
            workload, expert_schema(model)), True, "expert"),
    }
    engines = {}
    for name, (recommendation, share, protocol) in configurations.items():
        dataset = generate_dataset(model, seed=7)
        engine = ExecutionEngine(model, recommendation, dataset,
                                 share_reads=share,
                                 update_protocol=protocol)
        rows = engine.load()
        print(f"  {name}: {len(recommendation.indexes)} column families, "
              f"{rows} rows loaded")
        engines[name] = engine
    return engines


def measure(engines, iterations):
    """Mean simulated response time (ms) per transaction per schema."""
    results = {}
    for name, engine in engines.items():
        generator = RubisParameterGenerator(engine.dataset, seed=11)
        per_transaction = {}
        for transaction in TRANSACTIONS:
            total = 0.0
            for _ in range(iterations):
                requests = generator.requests_for(transaction)
                total += engine.execute_transaction(requests)
            per_transaction[transaction] = total / iterations
        results[name] = per_transaction
    return results


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--users", type=int, default=20_000)
    parser.add_argument("--iterations", type=int, default=25)
    arguments = parser.parse_args()

    model = rubis_model(users=arguments.users)
    workload = rubis_workload(model, mix="bidding")
    print(f"RUBiS with {arguments.users} users; "
          f"{len(workload.statements)} statements in 14 transactions")
    engines = build_engines(model, workload, arguments.users)
    results = measure(engines, arguments.iterations)

    print()
    print(f"{'Transaction':<24}{'NoSE':>10}{'Normalized':>12}{'Expert':>10}")
    for transaction in TRANSACTIONS:
        print(f"{transaction:<24}"
              f"{results['NoSE'][transaction]:>10.3f}"
              f"{results['Normalized'][transaction]:>12.3f}"
              f"{results['Expert'][transaction]:>10.3f}")

    weights = transaction_weights("bidding")
    print()
    print("Weighted average response time (bidding mix):")
    for name in ("NoSE", "Normalized", "Expert"):
        weighted = sum(results[name][t] * weights[t] for t in weights)
        print(f"  {name:<12} {weighted:.3f} ms")


if __name__ == "__main__":
    main()
