"""Workload-driven design: watching denormalization react to updates.

Reproduces the §II schema-design narrative quantitatively: as the POI
update rate grows, the advisor moves the POI attributes out of the
denormalized per-guest view into progressively more normalized column
families — without any explicit rules of thumb.

It is also the showcase for the staged advisor pipeline: every epoch
uses the same statements with different weights, so after the first
(cold) recommendation the advisor's structural cache serves the
prepared plan spaces and only re-costs and re-solves the program —
watch the per-epoch seconds collapse after the first weighted run.

Run with::

    python examples/workload_tuning.py
"""

import time

from repro import Advisor, Workload
from repro.demo import hotel_model


def poi_workload(model, update_weight):
    workload = Workload(model)
    workload.add_statement(
        "SELECT PointOfInterest.POIName, PointOfInterest.POIDescription "
        "FROM PointOfInterest.Hotels.Rooms.Reservations.Guest "
        "WHERE Guest.GuestID = ?guest",
        weight=10.0, label="pois_for_guest")
    if update_weight > 0:
        workload.add_statement(
            "UPDATE PointOfInterest SET POIName = ?name, "
            "POIDescription = ?description "
            "WHERE PointOfInterest.POIID = ?poi",
            weight=update_weight, label="update_poi")
    return workload


def main():
    model = hotel_model()
    advisor = Advisor(model)
    description = model.field("PointOfInterest", "POIDescription")

    print(f"{'update weight':>14}  {'CFs':>4}  {'copies of POI data':>19}  "
          f"{'query gets':>10}  {'total cost':>10}  {'seconds':>8}  "
          f"{'pipeline':>8}")
    for weight in (0.0, 0.1, 1.0, 10.0, 100.0, 1000.0):
        # each epoch builds a fresh Workload object; the advisor keys its
        # cache on statement *structure*, so every weighted epoch after
        # the first reuses the prepared plan spaces and program
        started = time.perf_counter()
        recommendation = advisor.recommend(poi_workload(model, weight))
        elapsed = time.perf_counter() - started
        copies = sum(1 for index in recommendation.indexes
                     if index.contains_field(description))
        (query,) = [q for q in recommendation.query_plans
                    if q.label == "pois_for_guest"]
        gets = len(recommendation.query_plans[query].lookup_steps)
        pipeline = "warm" if recommendation.timing.planning == 0.0 \
            else "cold"
        print(f"{weight:>14g}  {len(recommendation.indexes):>4}  "
              f"{copies:>19}  {gets:>10}  "
              f"{recommendation.total_cost:>10.2f}  {elapsed:>8.3f}  "
              f"{pipeline:>8}")

    print()
    print("Reading the table: with no updates the advisor denormalizes "
          "POI data into a guest-keyed view (1 get); as updates dominate "
          "it normalizes POI attributes away and accepts multi-get plans "
          "— the trade-off of §II, discovered by optimization.")
    print("The weight-0 epoch and the first weighted epoch run the full "
          "pipeline (cold); every later epoch differs only in weights, "
          "hits the advisor's structural cache, and skips straight to "
          "re-costing and re-solving (warm).")


if __name__ == "__main__":
    main()
