"""Quickstart: recommend a schema for the paper's hotel-booking example.

Builds the Fig 1 entity graph, describes a small weighted workload in
the paper's SQL-like statement language, and asks the advisor for a
schema.  The output shows the recommended column families in the
paper's ``[partition key][clustering key][values]`` triple notation and
one implementation plan per statement.

Run with::

    python examples/quickstart.py
"""

from repro import Advisor, Workload
from repro.demo import hotel_model


def main():
    model = hotel_model()
    print(model.describe())
    print()

    workload = Workload(model)
    # the paper's Fig 3 query: guests with reservations in a city above
    # a nightly rate
    workload.add_statement(
        "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate",
        weight=5.0, label="guests_in_city_above_rate")
    # the §II running example: points of interest near hotels booked by
    # a guest
    workload.add_statement(
        "SELECT PointOfInterest.POIName, PointOfInterest.POIDescription "
        "FROM PointOfInterest.Hotels.Rooms.Reservations.Guest "
        "WHERE Guest.GuestID = ?guest",
        weight=10.0, label="pois_for_guest")
    # an update statement (Fig 8 style): its weight controls how much
    # denormalization of POI attributes the advisor will tolerate
    workload.add_statement(
        "UPDATE PointOfInterest SET POIDescription = ?description "
        "WHERE PointOfInterest.POIID = ?poi",
        weight=1.0, label="update_poi")
    workload.add_statement(
        "INSERT INTO Reservation SET ResID = ?, ResStartDate = ?start, "
        "ResEndDate = ?end AND CONNECT TO Guest(?guest), Room(?room)",
        weight=2.0, label="make_reservation")

    advisor = Advisor(model)
    recommendation = advisor.recommend(workload)
    print(recommendation.describe())

    print()
    print(f"Advisor ran in {recommendation.timing.total:.2f}s "
          f"({recommendation.timing.candidates} candidates considered)")

    # the space constraint (§V) trades performance for storage; too
    # tight a budget makes the problem infeasible (no covering schema
    # fits), which the optimizer reports rather than silently relaxing
    from repro import OptimizationError
    print()
    for fraction in (0.75, 0.5, 0.25):
        budget = recommendation.size * fraction
        try:
            constrained = advisor.recommend(workload, space_limit=budget)
        except OptimizationError:
            print(f"budget {fraction:.0%}: no covering schema fits")
            continue
        print(f"budget {fraction:.0%}: {len(constrained.indexes)} "
              f"column families, cost {constrained.total_cost:.2f} "
              f"(unconstrained: {len(recommendation.indexes)} CFs, "
              f"cost {recommendation.total_cost:.2f})")


if __name__ == "__main__":
    main()
