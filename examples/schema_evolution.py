"""Operating NoSE over time: calibration and schema migration.

Two workflows beyond the one-shot recommendation:

1. *Calibration* — fit the cost model's constants to the record store's
   measured behaviour (the paper fitted its constants to its Cassandra
   testbed) instead of trusting defaults.
2. *Migration* — when the workload drifts (here: writes grow 50x),
   re-run the advisor and apply the schema diff to the running store
   without rebuilding unchanged column families.
3. *Incremental re-advising* — when the workload is *edited* (a
   statement retired), clone it, drop the statement and re-recommend:
   the advisor's per-statement artifact store replans only what
   changed, and the previous recommendation warm-starts the solve.

Run with::

    python examples/schema_evolution.py
"""

from repro import Advisor
from repro.backend import ExecutionEngine, Store
from repro.cost import calibrate_store
from repro.demo import hotel_dataset, hotel_model, hotel_workload
from repro.tools import execute_migration, plan_migration


def main():
    model = hotel_model(scale=0.02)

    # -- 1. calibrate the cost model against the store -----------------
    cost_model = calibrate_store(Store())
    print("Calibrated cost model from store probes:")
    print(f"  per-request  {cost_model.request_cost + cost_model.partition_cost:.4f} ms")
    print(f"  per-row      {cost_model.row_cost:.5f} ms")
    print(f"  per-put-row  {cost_model.put_cost:.5f} ms")
    print()

    advisor = Advisor(model, cost_model=cost_model)

    # -- 2. recommend and deploy for the current workload --------------
    workload = hotel_workload(model, include_updates=True)
    current = advisor.recommend(workload)
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    engine = ExecutionEngine(model, current, dataset)
    rows = engine.load()
    print(f"Deployed {len(current.indexes)} column families "
          f"({rows} rows)")

    # -- 3. the workload drifts: writes grow 50x ------------------------
    drifted = workload.scale_weights(50, mix="write_heavy")
    target = advisor.recommend(drifted)
    migration = plan_migration(current, target)
    print()
    print(migration.describe())

    loaded = execute_migration(engine.store, dataset, migration)
    print(f"\nMigrated: {loaded} rows loaded into new column families")

    # -- 4. the workload is edited: a statement is retired ---------------
    # clone() + remove_statement() build the edited workload without
    # mutating the deployed one; structural_diff shows what changed,
    # and the advisor replans only the affected statements while the
    # previous recommendation warm-starts the solve
    edited = drifted.clone()
    edited.remove_statement("pois_for_hotel")
    diff = drifted.structural_diff(edited)
    print(f"\nWorkload edited ({diff.summary()}): retired "
          f"'pois_for_hotel'")
    retuned = advisor.recommend(edited, warm_start=target)
    timing = retuned.timing
    print(f"re-advised incrementally: {timing.reused_statements} "
          f"statement(s) reused, {timing.replanned_statements} "
          f"re-planned")

    # -- 5. the store now serves the new plans --------------------------
    new_engine = ExecutionEngine(model, target, dataset,
                                 store=engine.store)
    query = workload.statements["pois_for_guest"]
    results = new_engine.execute_query(query, {"guest": 3})
    oracle = dataset.evaluate_query(query, {"guest": 3})
    got = {tuple(row[field.id] for field in query.select)
           for row in results}
    print(f"post-migration query agrees with ground truth: "
          f"{got == oracle}")


if __name__ == "__main__":
    main()
