"""Benchmark: monitor hook overhead on an unmonitored replay.

The monitoring policy (DESIGN.md, "Workload monitoring and drift")
promises that a replay with no monitor attached pays less than 5% for
the ingestion hooks.  The monitor adds exactly one site to the
execution path: the ``self.monitor is not None`` test in the two
dispatch gates (queries and updates), evaluated once per top-level
statement — when a recorder or telemetry already forced the observed
path, the only addition is the ``_observed`` wrapper's second
``is not None`` check before :meth:`WorkloadMonitor.observe_execution`.

A wall-clock A/B is too noisy to enforce 5% on a shared box, so —
exactly like ``test_profile_overhead.py`` — the guard bounds the cost
analytically: count the statement dispatches in one replay, measure
the disabled check in a tight loop, and assert sites x per-check cost
stays under 5% of the median unmonitored replay wall time.  The
estimate is conservative: every statement is charged the full extended
dispatch price even though short-circuiting skips the monitor test
whenever a recorder is attached.  Writes ``BENCH_monitor.json`` at the
repo root.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro import Advisor, telemetry
from repro.backend import ExecutionEngine
from repro.demo import hotel_dataset, hotel_model, hotel_workload
from repro.monitor import WorkloadMonitor
from repro.profile import request_schedule
from repro.randgen.data import BindingGenerator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OVERHEAD_BUDGET = 0.05
NULL_LOOP = 200_000
REQUESTS = 400


def _build():
    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    recommendation = Advisor(model).recommend(workload)
    return model, workload, recommendation


def _replay(model, workload, recommendation, monitor=None):
    """One full replay; returns (monitor requests seen, wall seconds)."""
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    engine = ExecutionEngine(model, recommendation, dataset,
                             monitor=monitor)
    engine.load()
    generator = BindingGenerator(dataset, seed=9, null_rate=0.0)
    replay = [(label, generator.bindings_for(
        workload.statements[label]))
        for label in request_schedule(workload, REQUESTS)]
    started = time.perf_counter()
    for label, params in replay:
        engine.execute(label, params)
    return engine, time.perf_counter() - started


def _null_dispatch_check_seconds():
    """Per-statement cost of the disabled monitor dispatch test.

    The exact expression the gates evaluate when nothing observes the
    replay: ``recorder is not None or monitor is not None or
    telemetry.current().enabled``.
    """
    recorder = monitor = None
    started = time.perf_counter()
    for _ in range(NULL_LOOP):
        if recorder is not None or monitor is not None \
                or telemetry.current().enabled:
            raise AssertionError
    return (time.perf_counter() - started) / NULL_LOOP


def test_unmonitored_replay_overhead_under_budget():
    model, workload, recommendation = _build()

    # 1. count dispatch sites with a monitor attached
    monitor = WorkloadMonitor(workload)
    _engine, _seconds = _replay(model, workload, recommendation,
                                monitor=monitor)
    statements = monitor.requests
    # the schedule seeds every statement at least once, so it can run
    # slightly past REQUESTS; the monitor must have seen every dispatch
    assert statements >= REQUESTS

    # 2. median unmonitored replay wall time (the default replay
    # configuration: no monitor, no recorder, telemetry disabled)
    assert not telemetry.current().enabled
    samples = []
    for _ in range(3):
        _engine, seconds = _replay(model, workload, recommendation)
        samples.append(seconds)
    unmonitored_seconds = statistics.median(samples)

    # 3. bound the disabled-hook cost analytically
    overhead_seconds = statements * _null_dispatch_check_seconds()
    overhead_share = overhead_seconds / unmonitored_seconds

    payload = {
        "workload": "hotel (updates included)",
        "requests": statements,
        "estimated_overhead_seconds": overhead_seconds,
        "unmonitored_seconds_median": unmonitored_seconds,
        "unmonitored_samples": samples,
        "overhead_share": overhead_share,
        "budget": OVERHEAD_BUDGET,
    }
    (REPO_ROOT / "BENCH_monitor.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    print(f"\nreplay: {statements} statements, estimated monitor hook "
          f"overhead {overhead_share:.4%} of {unmonitored_seconds:.3f}s "
          f"(budget {OVERHEAD_BUDGET:.0%})")

    assert overhead_share < OVERHEAD_BUDGET, (
        f"unmonitored replay hook overhead {overhead_share:.2%} "
        f"exceeds the {OVERHEAD_BUDGET:.0%} budget")
