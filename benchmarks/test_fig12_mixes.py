"""Fig 12: execution-plan performance across workload mixes.

Regenerates the weighted average response times of Fig 12 for the
Browsing mix, the Bidding mix, and the bidding mix with write
transactions scaled 10x and 100x.  The NoSE schema is re-recommended
for every mix (the paper notes each mix "leads to a different NoSE
schema"); the hand-written schemas are fixed.

Shape assertions: NoSE wins the read-dominated mixes; the expert
schema's relative position improves monotonically as writes scale and
it overtakes NoSE at 100x (the crossover the paper attributes to shared
support-query results and GROUP BY knowledge).
"""

import pytest

from bench_common import (
    BENCH_ITERATIONS,
    build_engine,
    measure_transactions,
    write_result,
)
from repro import Advisor
from repro.rubis import (
    TRANSACTIONS,
    expert_schema,
    normalized_schema,
    rubis_workload,
)
from repro.rubis.transactions import (
    BIDDING_MIX,
    BROWSING_MIX,
    WRITE_TRANSACTIONS,
)

MIXES = [
    ("Browsing", BROWSING_MIX, 1),
    ("Bidding", BIDDING_MIX, 1),
    ("10x", BIDDING_MIX, 10),
    ("100x", BIDDING_MIX, 100),
]


def _frequencies(base_mix, write_scale):
    scaled = {transaction: weight * write_scale
              if transaction in WRITE_TRANSACTIONS else weight
              for transaction, weight in base_mix.items()}
    total = sum(scaled.values())
    return {transaction: weight / total
            for transaction, weight in scaled.items()}


def _workload_for(model, mix_name, write_scale):
    workload = rubis_workload(
        model, mix="browsing" if mix_name == "Browsing" else "bidding")
    if write_scale > 1:
        write_labels = {label for transaction in WRITE_TRANSACTIONS
                        for label in TRANSACTIONS[transaction]}
        workload = workload.scale_weights(
            write_scale, predicate=lambda s: s.label in write_labels)
    return workload


@pytest.fixture(scope="module")
def fig12(rubis):
    """Weighted average simulated response time per (mix, schema)."""
    model, _ = rubis
    advisor = Advisor(model)
    results = {}
    for mix_name, base_mix, write_scale in MIXES:
        workload = _workload_for(model, mix_name, write_scale)
        recommendations = {
            "NoSE": advisor.recommend(workload),
            "Normalized": advisor.plan_for_schema(
                workload, normalized_schema(model)),
            "Expert": advisor.plan_for_schema(workload,
                                              expert_schema(model)),
        }
        frequencies = _frequencies(base_mix, write_scale)
        row = {}
        for name, recommendation in recommendations.items():
            engine = build_engine(model, recommendation, name)
            times = measure_transactions(
                engine, iterations=max(BENCH_ITERATIONS // 2, 5),
                transactions=list(base_mix))
            row[name] = sum(times[t] * frequencies[t]
                            for t in frequencies)
        results[mix_name] = row
    return results


def test_fig12_advisor_adapts_per_mix(benchmark, rubis):
    """Wall-clock benchmark: re-recommending for a shifted mix."""
    model, _ = rubis
    advisor = Advisor(model)
    workload = _workload_for(model, "100x", 100)
    benchmark.pedantic(lambda: advisor.recommend(workload), rounds=2,
                       iterations=1)


def test_fig12_report_and_shape(benchmark, fig12):
    lines = [f"{'Mix':<10}{'NoSE':>10}{'Normalized':>12}{'Expert':>10}"]
    for mix_name, _base, _scale in MIXES:
        row = fig12[mix_name]
        lines.append(f"{mix_name:<10}{row['NoSE']:>10.3f}"
                     f"{row['Normalized']:>12.3f}{row['Expert']:>10.3f}")
    from repro.reporting import grouped_bar_chart
    chart = grouped_bar_chart(
        {mix_name: dict(fig12[mix_name])
         for mix_name, _base, _scale in MIXES},
        width=30, log_scale=True, unit=" ms")
    table = "\n".join(lines) + "\n\n" + chart
    print("\n" + table)
    write_result("fig12_mixes.txt", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # -- shape assertions (paper Fig 12) ---------------------------------
    # read-dominated mixes: NoSE wins
    assert fig12["Browsing"]["NoSE"] < fig12["Browsing"]["Expert"]
    assert fig12["Browsing"]["NoSE"] < fig12["Browsing"]["Normalized"]
    assert fig12["Bidding"]["NoSE"] < fig12["Bidding"]["Expert"]
    # the expert's gap narrows monotonically as writes scale ...
    ratios = [fig12[mix]["Expert"] / fig12[mix]["NoSE"]
              for mix in ("Bidding", "10x", "100x")]
    assert ratios[0] > ratios[1] > ratios[2]
    # ... and crosses over at 100x writes
    assert fig12["100x"]["Expert"] < fig12["100x"]["NoSE"], \
        "the expert schema must overtake NoSE at 100x writes"
    # the normalized schema never wins a mix
    for mix_name, _base, _scale in MIXES:
        row = fig12[mix_name]
        assert row["Normalized"] >= min(row["NoSE"], row["Expert"])
