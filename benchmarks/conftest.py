"""Pytest fixtures for the benchmark harnesses (see bench_common)."""

import pytest

from bench_common import BENCH_USERS
from repro.rubis import rubis_model, rubis_workload


@pytest.fixture(scope="session")
def rubis():
    """The session-wide RUBiS model and bidding workload."""
    model = rubis_model(users=BENCH_USERS)
    workload = rubis_workload(model, mix="bidding")
    return model, workload
