"""Ablation: BIP solver versus exhaustive search (§V's motivation).

The paper rejects the naive power-set approach because it is
exponential in the number of candidates.  This harness measures both
optimizers on a problem small enough for brute force, verifies they
agree, and benchmarks the solve times; a second benchmark times the
two-phase BIP on the full RUBiS problem, far beyond brute force.
"""

import pytest

from bench_common import write_result
from repro import Advisor
from repro.advisor import prune_dominated_plans
from repro.cost import CassandraCostModel
from repro.demo import hotel_model
from repro.optimizer import (
    BIPOptimizer,
    BruteForceOptimizer,
    OptimizationProblem,
)
from repro.planner import QueryPlanner, UpdatePlanner
from repro.rubis import rubis_model, rubis_workload
from repro.workload import Workload


@pytest.fixture(scope="module")
def small_problem():
    """A hotel problem with a pool small enough for brute force."""
    model = hotel_model()
    workload = Workload(model)
    workload.add_statement(
        "SELECT Room.RoomID FROM Room WHERE "
        "Room.Hotel.HotelCity = ?city AND Room.RoomRate > ?rate",
        label="rooms")
    workload.add_statement(
        "SELECT Room.RoomNumber FROM Room WHERE Room.RoomID = ?room",
        label="room_number")
    workload.add_statement(
        "UPDATE Room SET RoomRate = ?rate WHERE Room.RoomID = ?room",
        label="set_rate")
    from repro.enumerator import CandidateEnumerator
    pool = sorted(CandidateEnumerator(model).candidates(workload),
                  key=lambda index: index.key)[:12]
    planner = QueryPlanner(model, pool)
    update_planner = UpdatePlanner(model, planner)
    cost_model = CassandraCostModel()
    query_plans = {}
    for query in workload.queries:
        plans = planner.plans_for(query, require=False)
        if not plans:
            continue
        for plan in plans:
            cost_model.cost_plan(plan)
        query_plans[query] = prune_dominated_plans(plans)
    update_plans = update_planner.plan_all(workload.updates,
                                           require=False)
    for plans in update_plans.values():
        for plan in plans:
            cost_model.cost_update_plan(plan)
    weights = {statement.label: weight
               for statement, weight in workload.weighted_statements}
    return OptimizationProblem(query_plans, update_plans, weights)


def test_solver_bip_small(benchmark, small_problem):
    optimizer = BIPOptimizer(mip_rel_gap=0.0)
    result = benchmark.pedantic(lambda: optimizer.solve(small_problem),
                                rounds=5, iterations=1)
    assert result.total_cost > 0


def test_solver_brute_force_small(benchmark, small_problem):
    optimizer = BruteForceOptimizer()
    result = benchmark.pedantic(lambda: optimizer.solve(small_problem),
                                rounds=2, iterations=1)
    bip = BIPOptimizer(mip_rel_gap=0.0).solve(small_problem)
    assert result.total_cost == pytest.approx(bip.total_cost, rel=1e-6)
    candidates = len(small_problem.indexes)
    write_result(
        "ablation_solver.txt",
        f"candidates: {candidates}\n"
        f"optimal cost (both solvers agree): {result.total_cost:.4f}\n"
        "see the pytest-benchmark table for solve times\n")


def test_solver_bip_rubis_scale(benchmark):
    """The BIP at RUBiS scale (hundreds of candidates) — brute force
    would need 2^N subsets and is not even attempted."""
    model = rubis_model(users=20_000)
    workload = rubis_workload(model, mix="bidding")
    advisor = Advisor(model)
    result = benchmark.pedantic(lambda: advisor.recommend(workload),
                                rounds=2, iterations=1)
    assert result.indexes
