"""Extension experiment: GROUP BY-aware enumeration at 100x writes.

§VII-A attributes part of the expert schema's 100x-mix win to GROUP BY
knowledge NoSE lacks, and leaves exploiting it as future work.  This
harness enables the grouped-view extension
(``CandidateEnumerator(grouped=True)``) and re-runs the 100x point of
Fig 12: the extension must not hurt, and it narrows the gap to the
expert schema by letting NoSE store collapsed per-result rows instead
of per-join-row records.
"""

import pytest

from bench_common import (
    BENCH_ITERATIONS,
    build_engine,
    measure_transactions,
    write_result,
)
from repro import Advisor
from repro.enumerator import CandidateEnumerator
from repro.rubis import TRANSACTIONS, expert_schema, rubis_workload
from repro.rubis.transactions import BIDDING_MIX, WRITE_TRANSACTIONS


def _workload_100x(model):
    workload = rubis_workload(model, mix="bidding")
    write_labels = {label for transaction in WRITE_TRANSACTIONS
                    for label in TRANSACTIONS[transaction]}
    return workload.scale_weights(
        100, predicate=lambda s: s.label in write_labels)


def _frequencies():
    scaled = {transaction: weight * 100
              if transaction in WRITE_TRANSACTIONS else weight
              for transaction, weight in BIDDING_MIX.items()}
    total = sum(scaled.values())
    return {transaction: weight / total
            for transaction, weight in scaled.items()}


@pytest.fixture(scope="module")
def grouped_100x(rubis):
    model, _ = rubis
    workload = _workload_100x(model)
    recommendations = {
        "NoSE": Advisor(model).recommend(workload),
        "NoSE+grouped": Advisor(
            model,
            enumerator=CandidateEnumerator(model, grouped=True),
        ).recommend(workload),
        "Expert": Advisor(model).plan_for_schema(workload,
                                                 expert_schema(model)),
    }
    frequencies = _frequencies()
    results = {}
    for name, recommendation in recommendations.items():
        schema_kind = "Expert" if name == "Expert" else "NoSE"
        engine = build_engine(model, recommendation, schema_kind)
        times = measure_transactions(
            engine, iterations=max(BENCH_ITERATIONS // 2, 5),
            transactions=list(BIDDING_MIX))
        results[name] = sum(times[t] * frequencies[t]
                            for t in frequencies)
    return results


def test_extension_grouped_views(benchmark, grouped_100x):
    lines = ["100x write mix, weighted average (ms):"]
    for name, value in grouped_100x.items():
        lines.append(f"  {name:<14} {value:.3f}")
    gap_plain = grouped_100x["NoSE"] - grouped_100x["Expert"]
    gap_grouped = grouped_100x["NoSE+grouped"] - grouped_100x["Expert"]
    lines.append(f"  gap to expert: plain {gap_plain:+.3f}, "
                 f"grouped {gap_grouped:+.3f}")
    table = "\n".join(lines)
    print("\n" + table)
    write_result("extension_grouped.txt", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # the extension never hurts, and narrows the expert gap
    assert grouped_100x["NoSE+grouped"] \
        <= grouped_100x["NoSE"] * 1.02
    assert gap_grouped <= gap_plain + 1e-9
