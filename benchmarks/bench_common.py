"""Shared helpers for the benchmark harnesses.

Each benchmark module regenerates one figure of the paper's evaluation
(§VII).  Experiments measure *simulated* service time from the record
store's latency model; pytest-benchmark additionally reports the
wall-clock cost of representative operations.  Knobs:

``NOSE_BENCH_USERS``       RUBiS scale (default 20000; paper used 200000)
``NOSE_BENCH_ITERATIONS``  executions per transaction (default 20)
``NOSE_BENCH_MAX_FACTOR``  largest Fig 13 workload scale factor (default 4)

Result tables are printed and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

from repro import Advisor
from repro.backend import ExecutionEngine
from repro.rubis import (
    RubisParameterGenerator,
    TRANSACTIONS,
    expert_schema,
    generate_dataset,
    normalized_schema,
)

BENCH_USERS = int(os.environ.get("NOSE_BENCH_USERS", "20000"))
BENCH_ITERATIONS = int(os.environ.get("NOSE_BENCH_ITERATIONS", "20"))
BENCH_MAX_FACTOR = int(os.environ.get("NOSE_BENCH_MAX_FACTOR", "4"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: per-schema executor semantics: (reads shared within a transaction,
#: update protocol).  NoSE plans follow the paper's §VI-B protocol and
#: share nothing; the expert's hand plans share reads and upsert.
SCHEMA_EXECUTION = {
    "NoSE": (False, "nose"),
    "Normalized": (False, "nose"),
    "Expert": (True, "expert"),
}


def write_result(name, text):
    """Persist one figure's table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    print(f"\n[written to {path}]")


def build_engine(model, recommendation, schema_name):
    """A loaded execution engine with the schema's executor semantics."""
    share, protocol = SCHEMA_EXECUTION[schema_name]
    dataset = generate_dataset(model, seed=7)
    engine = ExecutionEngine(model, recommendation, dataset,
                             share_reads=share, update_protocol=protocol)
    engine.load()
    return engine


def recommendations_for(model, workload):
    """Schema recommendations for all three designs."""
    advisor = Advisor(model)
    return {
        "NoSE": advisor.recommend(workload),
        "Normalized": advisor.plan_for_schema(workload,
                                              normalized_schema(model)),
        "Expert": advisor.plan_for_schema(workload,
                                          expert_schema(model)),
    }


def measure_transactions(engine, iterations=None, transactions=None,
                         seed=11):
    """Mean simulated response time (ms) per transaction."""
    iterations = iterations or BENCH_ITERATIONS
    generator = RubisParameterGenerator(engine.dataset, seed=seed)
    results = {}
    for transaction in (transactions or TRANSACTIONS):
        total = 0.0
        for _ in range(iterations):
            requests = generator.requests_for(transaction)
            total += engine.execute_transaction(requests)
        results[transaction] = total / iterations
    return results
