"""Fig 11: bidding-workload performance on the three schemas.

Regenerates the per-transaction mean response times of Fig 11 for the
NoSE-recommended, normalized, and expert schemas, printing the same
rows the paper plots.  Shape assertions (not absolute numbers): NoSE
beats both baselines on the weighted average; the normalized schema is
worst on the read-heavy transactions; NoSE pays more than the expert on
some write transaction (the denormalization trade the paper discusses);
and at least one transaction shows a large NoSE-over-expert factor.

Wall-clock numbers reported by pytest-benchmark measure one pass over
the weighted transaction stream per schema.
"""

import pytest

from bench_common import (
    TRANSACTIONS,
    build_engine,
    measure_transactions,
    recommendations_for,
    write_result,
)
from repro.rubis import RubisParameterGenerator, transaction_weights

_RESULTS = {}


@pytest.fixture(scope="module")
def fig11(rubis):
    """Engines and simulated per-transaction times for all schemas."""
    model, workload = rubis
    recommendations = recommendations_for(model, workload)
    engines = {}
    times = {}
    for name, recommendation in recommendations.items():
        engines[name] = build_engine(model, recommendation, name)
        times[name] = measure_transactions(engines[name])
    return engines, times


@pytest.mark.parametrize("schema_name", ["NoSE", "Normalized", "Expert"])
def test_fig11_transaction_stream(benchmark, fig11, schema_name):
    """Wall-clock benchmark: one weighted pass over all transactions."""
    engines, times = fig11
    engine = engines[schema_name]
    generator = RubisParameterGenerator(engine.dataset, seed=101)

    def one_pass():
        for transaction in TRANSACTIONS:
            engine.execute_transaction(
                generator.requests_for(transaction))

    benchmark.pedantic(one_pass, rounds=3, iterations=1)
    _RESULTS[schema_name] = times[schema_name]


def test_fig11_report_and_shape(benchmark, fig11):
    """Prints the Fig 11 table and asserts the paper's shape claims."""
    _engines, times = fig11
    weights = transaction_weights("bidding")

    lines = [f"{'Transaction':<24}{'NoSE':>10}{'Normalized':>12}"
             f"{'Expert':>10}"]
    for transaction in TRANSACTIONS:
        lines.append(f"{transaction:<24}"
                     f"{times['NoSE'][transaction]:>10.3f}"
                     f"{times['Normalized'][transaction]:>12.3f}"
                     f"{times['Expert'][transaction]:>10.3f}")
    weighted = {name: sum(values[t] * weights[t] for t in weights)
                for name, values in times.items()}
    lines.append("")
    lines.append("Weighted average (bidding mix):")
    for name, value in weighted.items():
        lines.append(f"  {name:<12} {value:.3f} ms")
    from repro.reporting import grouped_bar_chart
    chart = grouped_bar_chart(
        {transaction: {name: times[name][transaction]
                       for name in ("NoSE", "Normalized", "Expert")}
         for transaction in TRANSACTIONS},
        width=30, log_scale=True, unit=" ms")
    table = "\n".join(lines) + "\n\n" + chart
    print("\n" + table)
    write_result("fig11_bidding.txt", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # -- shape assertions (paper §VII-A) --------------------------------
    assert weighted["NoSE"] < weighted["Expert"], \
        "NoSE must win the weighted bidding mix"
    assert weighted["NoSE"] < weighted["Normalized"]
    assert weighted["Expert"] < weighted["Normalized"]
    # the normalized schema is worst on read-heavy transactions
    for transaction in ("ViewItem", "ViewBidHistory", "BrowseCategories"):
        assert times["Normalized"][transaction] \
            >= times["NoSE"][transaction]
    # NoSE trades more expensive writes for fast reads: at least one
    # write transaction costs NoSE more than the expert
    writes = ("StoreBid", "StoreBuyNow", "StoreComment", "RegisterItem")
    assert any(times["NoSE"][t] > times["Expert"][t] for t in writes)
    # ... and some read transaction shows a large NoSE advantage
    reads = ("SearchItemsByCategory", "ViewItem", "ViewBidHistory",
             "AboutMe", "ViewUserInfo")
    best_factor = max(times["Expert"][t] / times["NoSE"][t]
                      for t in reads)
    assert best_factor > 3.0, \
        f"expected a large single-transaction win, got {best_factor:.1f}x"
