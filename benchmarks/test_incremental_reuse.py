"""Benchmark: statement-granular incremental re-preparation (RuBiS).

Measures the tentpole claim of the per-statement artifact store: after
one cold ``prepare`` of the RuBiS bidding mix, editing a *single*
statement and re-preparing replans only the affected statements — the
rest are served from the store — so the delta prepare must be at least
3x faster than a cold prepare, while producing exactly the cold
recommendation for the edited workload.

Writes ``BENCH_incremental.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from bench_common import write_result
from repro import Advisor
from repro.rubis import rubis_model, rubis_workload
from repro.workload.statements import Query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
MAX_PLANS = 4000
MIN_SPEEDUP = 3.0


def _timed(function):
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def _edit_query(workload, label):
    """Change one query's selected fields (a single-statement edit)."""
    original = workload.remove_statement(label)
    select = list(original.select)
    if len(select) > 1:
        select = select[:-1]
    else:
        extra = [field for field in original.entity.attributes
                 if field not in select]
        select = select + extra[:1]
    edited = Query(original.key_path, select, original.conditions,
                   order_by=original.order_by, limit=original.limit,
                   label=label)
    workload.add_statement(edited, weight=1.0, label=label)


#: the edited statement for the headline measurement — a query whose
#: candidates overlap few other statements, so the edit's blast radius
#: is small (the common "tweak one query" tuning loop); edits to
#: hub statements legitimately replan more and are reported as
#: supplementary stats below, unasserted
HEADLINE_EDIT = "bc_categories"


def test_incremental_reprepare_speedup():
    model = rubis_model()
    workload = rubis_workload(model, mix="bidding")
    edited = workload.clone()
    _edit_query(edited, HEADLINE_EDIT)

    # median of three independent cold prepares
    cold_samples = []
    for _ in range(3):
        advisor = Advisor(model, max_plans=MAX_PLANS)
        _, seconds = _timed(lambda: advisor.prepare(workload))
        cold_samples.append(seconds)
    cold_seconds = statistics.median(cold_samples)

    # median of three delta prepares: each sample uses a fresh advisor
    # whose artifact store was populated by an *untimed* base prepare,
    # so every sample measures the same single-statement edit honestly
    # (repeating one advisor would serve even the edit from its store)
    delta_samples = []
    delta_stats = None
    advisor = None
    for _ in range(3):
        advisor = Advisor(model, max_plans=MAX_PLANS)
        advisor.prepare(workload)
        prepared, seconds = _timed(lambda: advisor.prepare(edited))
        delta_samples.append(seconds)
        delta_stats = {
            "edited": HEADLINE_EDIT,
            "reused_statements": prepared.reused_statements,
            "replanned_statements": prepared.replanned_statements,
        }
    delta_seconds = statistics.median(delta_samples)
    speedup = cold_seconds / delta_seconds

    # the delta-prepared advisor must agree exactly with a cold one
    served = advisor.recommend(edited)
    fresh = Advisor(model, max_plans=MAX_PLANS).recommend(edited)
    identical = served.total_cost == fresh.total_cost and \
        sorted(index.key for index in served.indexes) == \
        sorted(index.key for index in fresh.indexes)
    assert identical, "incremental recommendation diverged from cold"

    # supplementary: the blast radius of editing each of the first few
    # queries (hub statements change the pool other statements see, so
    # they replan more — correctness requires it)
    survey_advisor = Advisor(model, max_plans=MAX_PLANS)
    survey_advisor.prepare(workload)
    survey = []
    for label in [query.label for query in workload.queries][:4]:
        probe = workload.clone()
        _edit_query(probe, label)
        prepared, seconds = _timed(lambda: survey_advisor.prepare(probe))
        survey.append({
            "edited": label,
            "seconds": seconds,
            "reused_statements": prepared.reused_statements,
            "replanned_statements": prepared.replanned_statements,
        })

    payload = {
        "workload": "rubis/bidding",
        "max_plans": MAX_PLANS,
        "cold_prepare_seconds": cold_seconds,
        "cold_samples": cold_samples,
        "delta_prepare_seconds": delta_seconds,
        "delta_samples": delta_samples,
        "delta_stats": delta_stats,
        "speedup": speedup,
        "identical_recommendation": identical,
        "edit_survey": survey,
        "artifact_store": advisor.artifacts.stats(),
    }
    (REPO_ROOT / "BENCH_incremental.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    summary = (f"cold prepare (median):   {cold_seconds:.4f}s\n"
               f"delta prepare (median):  {delta_seconds:.4f}s\n"
               f"speedup:                 {speedup:.1f}x\n"
               f"identical result:        {identical}\n"
               f"headline edit:           {delta_stats}\n"
               f"edit survey:             {survey}\n")
    print("\n" + summary)
    write_result("incremental_reuse.txt", summary)

    assert speedup >= MIN_SPEEDUP, (
        f"single-statement delta prepare only {speedup:.1f}x faster "
        f"than cold (expected >= {MIN_SPEEDUP}x)")
