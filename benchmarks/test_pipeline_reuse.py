"""Benchmark: staged pipeline reuse on the RuBiS bidding mix.

Measures the tentpole claim of the staged advisor pipeline: after one
cold ``recommend`` the structural cache holds the enumerated candidates,
plan spaces and BIP matrix, so a weight-only retune (``recommend`` with
scaled weights, or ``recommend_prepared`` with a new weight map) skips
enumeration, planning, costing and pruning and only re-solves the
program.  The warm path must return the *same* recommendation a cold
solve of the retuned workload would.

Writes ``BENCH_pipeline.json`` at the repo root with both timings.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from bench_common import write_result
from repro import Advisor
from repro.reporting import timing_table
from repro.rubis import rubis_model, rubis_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WARM_EPOCHS = 5
#: complete plan spaces for the workload queries — the benchmark should
#: not measure a truncated search (only the deliberate dense-support
#: caps remain, as in every configuration)
MAX_PLANS = 4000


def _fingerprint(recommendation):
    return {
        "indexes": sorted(index.key for index in recommendation.indexes),
        "query_plans": {query.label: plan.signature
                        for query, plan
                        in recommendation.query_plans.items()},
    }


def _timed(function):
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def _stage_row(timing):
    # stage_breakdown's buckets are disjoint and sum to the total —
    # the earlier as_figure13_row-based row double-counted enumeration,
    # planning and pruning inside its rolled-up "other" share
    row = timing.stage_breakdown()
    row["total"] = timing.total
    row["cache_hits"] = timing.cache_hits
    return row


def test_pipeline_reuse_speedup():
    model = rubis_model()
    workload = rubis_workload(model, mix="bidding")

    # median of three independent cold solves — single-shot timings on a
    # shared box are too noisy to headline
    cold_samples = []
    for _ in range(3):
        advisor = Advisor(model, max_plans=MAX_PLANS)
        cold_rec, seconds = _timed(lambda: advisor.recommend(workload))
        cold_samples.append(seconds)
    cold_seconds = statistics.median(cold_samples)

    rows = {"cold": cold_rec.timing}
    warm_seconds = []
    warm_identical = True
    for epoch in range(1, WARM_EPOCHS + 1):
        factor = 1.0 + epoch / 10.0
        tuned = workload.scale_weights(factor)
        warm_rec, seconds = _timed(lambda: advisor.recommend(tuned))
        warm_seconds.append(seconds)
        rows[f"warm x{factor:g}"] = warm_rec.timing
        assert warm_rec.timing.planning == 0.0, \
            "warm epoch unexpectedly re-planned"
        fresh = Advisor(model, max_plans=MAX_PLANS).recommend(tuned)
        identical = _fingerprint(warm_rec) == _fingerprint(fresh)
        warm_identical = warm_identical and identical
        assert identical, f"warm epoch x{factor:g} diverged from fresh"

    warm_median = statistics.median(warm_seconds)
    speedup = cold_seconds / warm_median

    serial_advisor = Advisor(model, max_plans=MAX_PLANS, jobs=1)
    _, serial_seconds = _timed(lambda: serial_advisor.recommend(workload))
    parallel_advisor = Advisor(model, max_plans=MAX_PLANS, jobs=4)
    _, parallel_seconds = _timed(
        lambda: parallel_advisor.recommend(workload))

    payload = {
        "workload": "rubis/bidding",
        "cold_seconds": cold_seconds,
        "cold_samples": cold_samples,
        "warm_seconds": warm_seconds,
        "warm_seconds_median": warm_median,
        "speedup": speedup,
        "identical_recommendation": warm_identical,
        "warm_epochs": WARM_EPOCHS,
        "serial_cold_seconds": serial_seconds,
        "jobs4_cold_seconds": parallel_seconds,
        "cold_stages": _stage_row(cold_rec.timing),
        "warm_stages": _stage_row(warm_rec.timing),
    }
    (REPO_ROOT / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    table = timing_table(rows)
    summary = (f"{table}\n\n"
               f"cold recommend:        {cold_seconds:.4f}s\n"
               f"warm retune (median):  {warm_median:.4f}s\n"
               f"speedup:               {speedup:.1f}x\n"
               f"identical result:      {warm_identical}\n"
               f"cold jobs=1 / jobs=4:  {serial_seconds:.4f}s / "
               f"{parallel_seconds:.4f}s\n")
    print()
    print(summary)
    write_result("pipeline_reuse.txt", summary)

    # acceptance: warm weight-only retune >= 5x faster than cold solve
    assert speedup >= 5.0, \
        f"pipeline reuse speedup {speedup:.1f}x below the 5x target"
