"""Benchmark: telemetry overhead on the RuBiS bidding mix.

The overhead policy (DESIGN.md, "Telemetry") promises that disabled
telemetry costs less than 3% of advisor runtime.  A direct
enabled-vs-disabled wall-clock comparison is too noisy to enforce a 3%
bound on a shared box, so the guard bounds the overhead analytically:

1. run the advisor once with telemetry *enabled* and read the exact
   number of telemetry operations the pipeline performed (metric
   updates plus spans opened);
2. measure the per-operation cost of the *disabled* hooks — a
   ``telemetry.current()`` read, the ``enabled`` check, and a null
   metric call — in a tight loop;
3. assert that op-count x null-op cost stays under 3% of the median
   disabled advisor runtime.

The estimate is conservative: it charges every operation the full null
hook price even though disabled runs skip most hook call sites behind
one ``enabled`` branch.  Writes ``BENCH_telemetry.json`` at the repo
root.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro import Advisor, telemetry
from repro.rubis import rubis_model, rubis_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OVERHEAD_BUDGET = 0.03
NULL_LOOP = 200_000


def _timed(function):
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def _null_hook_seconds():
    """Per-operation cost of the disabled telemetry hooks."""
    started = time.perf_counter()
    for _ in range(NULL_LOOP):
        active = telemetry.current()
        if active.enabled:
            active.count("never")
    elapsed = time.perf_counter() - started
    return elapsed / NULL_LOOP


def test_disabled_telemetry_overhead_under_budget():
    model = rubis_model()
    workload = rubis_workload(model, mix="bidding")

    # 1. count telemetry operations in one enabled run
    with telemetry.activate() as sink:
        Advisor(model).recommend(workload)
        ops = sink.metrics.ops + sink.tracer.span_count
    assert ops > 0, "enabled run recorded no telemetry"

    # 2. median disabled runtime (telemetry off is the default state)
    assert not telemetry.current().enabled
    disabled_samples = []
    for _ in range(3):
        advisor = Advisor(model)
        _, seconds = _timed(lambda: advisor.recommend(workload))
        disabled_samples.append(seconds)
    disabled_seconds = statistics.median(disabled_samples)

    # 3. bound the disabled-hook cost by op count x null-op price
    null_op_seconds = _null_hook_seconds()
    overhead_seconds = ops * null_op_seconds
    overhead_share = overhead_seconds / disabled_seconds

    payload = {
        "workload": "rubis/bidding",
        "telemetry_ops": ops,
        "null_op_seconds": null_op_seconds,
        "estimated_overhead_seconds": overhead_seconds,
        "disabled_seconds_median": disabled_seconds,
        "disabled_samples": disabled_samples,
        "overhead_share": overhead_share,
        "budget": OVERHEAD_BUDGET,
    }
    (REPO_ROOT / "BENCH_telemetry.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    print(f"\ntelemetry ops: {ops}, null hook: {null_op_seconds:.2e}s, "
          f"estimated overhead: {overhead_share:.4%} "
          f"of {disabled_seconds:.3f}s (budget {OVERHEAD_BUDGET:.0%})")

    assert overhead_share < OVERHEAD_BUDGET, (
        f"disabled-telemetry overhead {overhead_share:.2%} exceeds "
        f"the {OVERHEAD_BUDGET:.0%} budget")
