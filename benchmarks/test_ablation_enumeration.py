"""Ablation: the value of the enumeration features (§IV-A).

The paper's enumerator includes two optional mechanisms beyond plain
per-query materialized views: predicate/order *relaxation* (§IV-A2) and
the *Combine* step (§IV-A3).  This harness disables each on two
workloads and compares recommended-schema cost:

* the full hotel workload — here the materialized views win outright
  and the extra candidates are insurance;
* a "repricing" workload where room rates are updated two hundred times
  more often than they are queried — here relaxation is decisive: the
  range-relaxed candidates drop ``RoomRate`` from the view entirely, so
  rate updates no longer rewrite guest records (the query pays a fetch
  plus a client-side filter instead).
"""

import pytest

from bench_common import write_result
from repro import Advisor, Workload
from repro.demo import hotel_model, hotel_workload
from repro.enumerator import CandidateEnumerator

VARIANTS = {
    "full": dict(relax=True, combine=True),
    "no-relaxation": dict(relax=False, combine=True),
    "no-combine": dict(relax=True, combine=False),
    "neither": dict(relax=False, combine=False),
}


def _repricing_workload(model):
    workload = Workload(model)
    workload.add_statement(
        "SELECT Guest.GuestName, Guest.GuestEmail FROM Guest "
        "WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city "
        "AND Guest.Reservations.Room.RoomRate > ?rate",
        weight=5.0, label="fig3")
    workload.add_statement(
        "SELECT Guest.GuestName FROM Guest WHERE Guest.GuestID = ?",
        weight=5.0, label="guest")
    workload.add_statement(
        "UPDATE Room SET RoomRate = ?rate WHERE Room.RoomID = ?room",
        weight=200.0, label="reprice")
    return workload


@pytest.fixture(scope="module")
def ablation():
    model = hotel_model()
    workloads = {
        "hotel": hotel_workload(model, include_updates=True),
        "repricing": _repricing_workload(model),
    }
    results = {}
    for workload_name, workload in workloads.items():
        for variant, options in VARIANTS.items():
            enumerator = CandidateEnumerator(model, **options)
            advisor = Advisor(model, enumerator=enumerator)
            recommendation = advisor.recommend(workload)
            results[(workload_name, variant)] = {
                "candidates": recommendation.timing.candidates,
                "cost": recommendation.total_cost,
                "indexes": len(recommendation.indexes),
            }
    return results


def test_ablation_enumeration_features(benchmark, ablation):
    model = hotel_model()
    workload = _repricing_workload(model)
    advisor = Advisor(model)
    benchmark.pedantic(lambda: advisor.recommend(workload), rounds=3,
                       iterations=1)

    lines = [f"{'workload':<11}{'variant':<16}{'candidates':>12}"
             f"{'CFs':>5}{'cost':>10}"]
    for (workload_name, variant), row in ablation.items():
        lines.append(f"{workload_name:<11}{variant:<16}"
                     f"{row['candidates']:>12}{row['indexes']:>5}"
                     f"{row['cost']:>10.2f}")
    table = "\n".join(lines)
    print("\n" + table)
    write_result("ablation_enumeration.txt", table)

    # more candidates can only help the optimizer (same cost model)
    for workload_name in ("hotel", "repricing"):
        full = ablation[(workload_name, "full")]
        for variant in ("no-relaxation", "no-combine", "neither"):
            other = ablation[(workload_name, variant)]
            assert full["cost"] <= other["cost"] * 1.001
            assert full["candidates"] >= other["candidates"]
    # on the repricing workload, relaxation is decisive (> 20% cheaper)
    assert ablation[("repricing", "full")]["cost"] \
        < ablation[("repricing", "no-relaxation")]["cost"] * 0.8
