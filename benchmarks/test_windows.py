"""Benchmark: windowed advising beats both single-strategy baselines.

The windowed deliverable (ISSUE 10): on the RUBiS browsing->bidding->
browsing drift schedule, the schedule chosen by the windowed BIP —
schemas per window plus costed migrations between them — must be
*strictly* cheaper than (a) the best static single schema held across
all windows and (b) naive per-window re-advising with migrations
priced after the fact.  All three strategies are scored by the same
evaluator (see :mod:`repro.windows.advisor`), so the comparison is
apples-to-apples by construction and the assertion guards the solver
actually exploiting the middle ground: migrating only the column
families whose per-window win covers their load cost.

Also checks the "nose-windows/1" document round-trips byte-stable
through :mod:`repro.io` with serial and ``jobs=2`` pipelines — the
acceptance criterion CI's artifact diffing relies on.  Writes
``BENCH_windows.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import Advisor
from repro.io import dump_windows
from repro.windows import recommend_windows, rubis_drift_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

USERS = 2000
BROWSING_REQUESTS = 6000.0
BIDDING_REQUESTS = 6000.0
LOAD_RATE = 0.15


def _run(jobs=None):
    model, workload, schedule, migration_model = rubis_drift_scenario(
        users=USERS, browsing_requests=BROWSING_REQUESTS,
        bidding_requests=BIDDING_REQUESTS, load_rate=LOAD_RATE)
    advisor = Advisor(model, jobs=jobs)
    started = time.perf_counter()
    recommendation = recommend_windows(advisor, workload, schedule,
                                       migration_model=migration_model,
                                       jobs=jobs)
    return recommendation, time.perf_counter() - started


def test_windowed_schedule_beats_static_and_naive(tmp_path):
    recommendation, seconds = _run()
    windowed = recommendation.total_cost
    static = recommendation.baselines["static"]["total"]
    naive = recommendation.baselines["naive_per_window"]["total"]

    meta = {"source": "rubis-drift", "users": USERS}
    document = recommendation.document(meta=meta)
    threaded, threaded_seconds = _run(jobs=2)
    serial_path = dump_windows(document, tmp_path / "serial.json")
    jobs_path = dump_windows(threaded.document(meta=meta),
                             tmp_path / "jobs2.json")
    byte_stable = pathlib.Path(serial_path).read_bytes() \
        == pathlib.Path(jobs_path).read_bytes()

    payload = {
        "scenario": {
            "users": USERS,
            "schedule": [
                {"label": window.label, "mix": window.mix,
                 "requests": window.requests}
                for window in recommendation.schedule],
            "migration_model":
                recommendation.migration_model.cost_terms(),
        },
        "windowed": {
            "serving": recommendation.serving_cost,
            "migration": recommendation.migration_cost,
            "total": windowed,
            "schemas": [sorted(result.keys)
                        for result in recommendation.windows],
        },
        "static": recommendation.baselines["static"],
        "naive_per_window":
            recommendation.baselines["naive_per_window"],
        "savings_vs_static_pct": 100.0 * (static - windowed) / static,
        "savings_vs_naive_pct": 100.0 * (naive - windowed) / naive,
        "byte_stable_serial_vs_jobs2": byte_stable,
        "wall_seconds": {"serial": seconds, "jobs2": threaded_seconds},
    }
    # baseline window entries hold WindowResult objects; keep the keys
    for name in ("static", "naive_per_window"):
        payload[name] = {
            "serving": payload[name]["serving"],
            "migration": payload[name]["migration"],
            "total": payload[name]["total"],
            "schemas": [sorted(result.keys)
                        for result in payload[name]["windows"]],
        }
    (REPO_ROOT / "BENCH_windows.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(f"\nwindowed {windowed:.1f} vs static {static:.1f} "
          f"({payload['savings_vs_static_pct']:.2f}% saved) vs naive "
          f"{naive:.1f} ({payload['savings_vs_naive_pct']:.2f}% saved)")

    assert windowed < static, (
        f"windowed schedule ({windowed:.3f}) must be strictly cheaper "
        f"than the static schema ({static:.3f})")
    assert windowed < naive, (
        f"windowed schedule ({windowed:.3f}) must be strictly cheaper "
        f"than naive per-window re-advising ({naive:.3f})")
    assert byte_stable, (
        "serial and jobs=2 windows documents must be byte-identical")
