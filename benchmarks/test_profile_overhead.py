"""Benchmark: flight-recorder hook overhead on an unprofiled replay.

The profiling policy (DESIGN.md, "Execution profiling") promises that
a replay with no recorder attached and telemetry disabled pays less
than 5% for the observation hooks.  A direct wall-clock A/B is too
noisy to enforce 5% on a shared box, so the guard bounds the overhead
analytically, the same way ``test_telemetry_overhead.py`` does:

1. replay the hotel workload once *with* a recorder attached and count
   the hook sites that fired — one per statement (the ``_observed``
   dispatch check plus the store-metric snapshots it skips when idle)
   and one per charged store operation (the ``store.recorder``
   attribute read);
2. measure the per-site cost of the *disabled* hooks — the
   ``recorder is None`` / ``telemetry.current().enabled`` dispatch
   check and the null recorder-attribute read — in a tight loop;
3. assert that site-count x null-hook cost stays under 5% of the
   median unprofiled replay wall time.

The estimate is conservative: every site is charged the full null-hook
price.  Writes ``BENCH_profile.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro import Advisor, telemetry
from repro.backend import ExecutionEngine
from repro.demo import hotel_dataset, hotel_model, hotel_workload
from repro.profile import FlightRecorder, request_schedule
from repro.randgen.data import BindingGenerator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OVERHEAD_BUDGET = 0.05
NULL_LOOP = 200_000
REQUESTS = 400


def _build():
    model = hotel_model(scale=0.02)
    workload = hotel_workload(model, include_updates=True)
    recommendation = Advisor(model).recommend(workload)
    return model, workload, recommendation


def _replay(model, workload, recommendation, recorder=None):
    """One full replay; returns (engine, wall seconds)."""
    dataset = hotel_dataset(model, seed=42)
    dataset.sync_counts()
    engine = ExecutionEngine(model, recommendation, dataset,
                             recorder=recorder)
    engine.load()
    generator = BindingGenerator(dataset, seed=9, null_rate=0.0)
    replay = [(label, generator.bindings_for(
        workload.statements[label]))
        for label in request_schedule(workload, REQUESTS)]
    started = time.perf_counter()
    for label, params in replay:
        engine.execute(label, params)
    return engine, time.perf_counter() - started


def _null_statement_hook_seconds():
    """Per-statement cost of the disabled dispatch check."""
    recorder = None
    started = time.perf_counter()
    for _ in range(NULL_LOOP):
        if recorder is not None or telemetry.current().enabled:
            raise AssertionError
    return (time.perf_counter() - started) / NULL_LOOP


def _null_op_hook_seconds():
    """Per-operation cost of the null recorder-attribute read."""
    class Holder:
        recorder = None
    store = Holder()
    started = time.perf_counter()
    for _ in range(NULL_LOOP):
        if store.recorder is not None:
            raise AssertionError
    return (time.perf_counter() - started) / NULL_LOOP


def test_unprofiled_replay_overhead_under_budget():
    model, workload, recommendation = _build()

    # 1. count hook sites with a recorder attached
    recorder = FlightRecorder()
    engine, _seconds = _replay(model, workload, recommendation,
                               recorder=recorder)
    statements = recorder.total_requests()
    metrics = engine.store.metrics
    operations = metrics.gets + metrics.puts + metrics.deletes
    assert statements > 0 and operations > 0

    # 2. median unprofiled replay wall time (no recorder, telemetry
    # disabled — the default replay configuration)
    assert not telemetry.current().enabled
    samples = []
    for _ in range(3):
        _engine, seconds = _replay(model, workload, recommendation)
        samples.append(seconds)
    unprofiled_seconds = statistics.median(samples)

    # 3. bound the disabled-hook cost analytically
    overhead_seconds = (statements * _null_statement_hook_seconds()
                        + operations * _null_op_hook_seconds())
    overhead_share = overhead_seconds / unprofiled_seconds

    payload = {
        "workload": "hotel (updates included)",
        "requests": statements,
        "store_operations": operations,
        "estimated_overhead_seconds": overhead_seconds,
        "unprofiled_seconds_median": unprofiled_seconds,
        "unprofiled_samples": samples,
        "overhead_share": overhead_share,
        "budget": OVERHEAD_BUDGET,
    }
    (REPO_ROOT / "BENCH_profile.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    print(f"\nreplay: {statements} statements, {operations} store "
          f"ops, estimated hook overhead {overhead_share:.4%} of "
          f"{unprofiled_seconds:.3f}s (budget {OVERHEAD_BUDGET:.0%})")

    assert overhead_share < OVERHEAD_BUDGET, (
        f"unprofiled replay hook overhead {overhead_share:.2%} "
        f"exceeds the {OVERHEAD_BUDGET:.0%} budget")
