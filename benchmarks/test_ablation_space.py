"""Ablation: the cost/storage trade-off (§V's space constraint).

Sweeps the storage budget from unconstrained down toward the smallest
covering schema and reports the optimizer's cost at each point — the
normalization/performance knob §IX highlights as an explicit feature.
"""

import pytest

from bench_common import write_result
from repro import Advisor, OptimizationError
from repro.demo import hotel_model, hotel_workload

FRACTIONS = (1.0, 0.9, 0.75, 0.6, 0.5, 0.4, 0.3)


@pytest.fixture(scope="module")
def sweep():
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    advisor = Advisor(model)
    unconstrained = advisor.recommend(workload)
    full_size = unconstrained.size
    rows = []
    for fraction in FRACTIONS:
        try:
            recommendation = advisor.recommend(
                workload, space_limit=full_size * fraction)
            rows.append((fraction, recommendation.size / 1e6,
                         len(recommendation.indexes),
                         recommendation.total_cost))
        except OptimizationError:
            rows.append((fraction, None, None, None))
    return full_size, rows


def test_ablation_space_tradeoff(benchmark, sweep):
    full_size, rows = sweep
    model = hotel_model()
    workload = hotel_workload(model, include_updates=True)
    advisor = Advisor(model)
    tightest = min((fraction for fraction, _s, _i, cost in rows
                    if cost is not None), default=1.0)
    benchmark.pedantic(
        lambda: advisor.recommend(workload,
                                  space_limit=full_size * tightest),
        rounds=2, iterations=1)

    lines = [f"{'budget':>8}{'used MB':>9}{'CFs':>5}{'cost':>10}"]
    for fraction, size_mb, indexes, cost in rows:
        if cost is None:
            lines.append(f"{fraction:>8.0%}{'—':>9}{'—':>5}"
                         f"{'infeasible':>12}")
        else:
            lines.append(f"{fraction:>8.0%}{size_mb:>9.2f}{indexes:>5}"
                         f"{cost:>10.2f}")
    table = "\n".join(lines)
    print("\n" + table)
    write_result("ablation_space.txt", table)

    # tightening the budget can only increase cost, until infeasibility
    costs = [cost for _f, _s, _i, cost in rows if cost is not None]
    assert costs == sorted(costs), \
        "cost must be monotone in the storage budget"
    feasible = [cost is not None for _f, _s, _i, cost in rows]
    assert feasible == sorted(feasible, reverse=True), \
        "feasibility must be monotone in the storage budget"
