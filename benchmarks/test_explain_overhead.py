"""Benchmark: explain/provenance collection overhead on RuBiS bidding.

Provenance and ledger collection is always on — there is no flag to
forget — so it must be cheap.  The policy (DESIGN.md, "Explain and
diff") budgets it at under 5% of advisor runtime.  A wall-clock A/B
comparison is impossible (collection cannot be turned off) and would be
too noisy anyway, so the guard bounds the cost analytically, the same
way ``test_telemetry_overhead.py`` prices telemetry:

1. run the advisor once and read the exact number of explain-side
   bookkeeping operations it performed: provenance ``record()`` calls
   plus pruning-ledger entries plus solver-ledger rows;
2. measure the per-operation price of the most expensive of those
   operations — a provenance record with source resolution — in a
   tight loop;
3. assert that op-count x per-op price stays under 5% of the median
   advisor runtime.

The estimate is conservative: every ledger entry is charged the full
provenance-record price although most are single dict appends.  Writes
``BENCH_explain.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro import Advisor
from repro.explain import ProvenanceRecorder
from repro.rubis import rubis_model, rubis_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OVERHEAD_BUDGET = 0.05
RECORD_LOOP = 100_000


class _Index:
    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key


class _Statement:
    is_support = False
    label = "q_bench"


def _record_op_seconds():
    """Per-operation price of one provenance record."""
    recorder = ProvenanceRecorder()
    indexes = [_Index(f"i{n}") for n in range(64)]
    statement = _Statement()
    started = time.perf_counter()
    for n in range(RECORD_LOOP):
        recorder.record(indexes[n % 64], "materialize", source=statement)
    elapsed = time.perf_counter() - started
    return elapsed / RECORD_LOOP


def test_explain_collection_overhead_under_budget():
    model = rubis_model()
    workload = rubis_workload(model, mix="bidding")

    # 1. count explain bookkeeping operations in one run, and time a
    #    few runs for the median advisor runtime (collection is always
    #    on, so these are the same runs)
    samples = []
    ops = 0
    for _ in range(3):
        advisor = Advisor(model)
        started = time.perf_counter()
        recommendation = advisor.recommend(workload)
        samples.append(time.perf_counter() - started)
        data = recommendation.explain_data
        ledger_entries = sum(
            record["considered"] for record in data.pruning.values())
        solver_rows = len(recommendation.ledger["indexes"]) \
            + len(recommendation.ledger["statements"])
        ops = data.provenance.ops + ledger_entries + solver_rows
    assert ops > 0, "run collected no provenance"
    runtime_seconds = statistics.median(samples)

    # 2./3. bound the collection cost by op count x per-record price
    record_seconds = _record_op_seconds()
    overhead_seconds = ops * record_seconds
    overhead_share = overhead_seconds / runtime_seconds

    payload = {
        "workload": "rubis/bidding",
        "explain_ops": ops,
        "record_op_seconds": record_seconds,
        "estimated_overhead_seconds": overhead_seconds,
        "runtime_seconds_median": runtime_seconds,
        "runtime_samples": samples,
        "overhead_share": overhead_share,
        "budget": OVERHEAD_BUDGET,
    }
    (REPO_ROOT / "BENCH_explain.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    print(f"\nexplain ops: {ops}, record op: {record_seconds:.2e}s, "
          f"estimated overhead: {overhead_share:.4%} "
          f"of {runtime_seconds:.3f}s (budget {OVERHEAD_BUDGET:.0%})")

    assert overhead_share < OVERHEAD_BUDGET, (
        f"explain-collection overhead {overhead_share:.2%} exceeds "
        f"the {OVERHEAD_BUDGET:.0%} budget")
