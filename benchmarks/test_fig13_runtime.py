"""Fig 13: advisor runtime for varying workload sizes.

Regenerates the paper's advisor-scalability experiment: random
Watts-Strogatz entity graphs with random-walk statements, scaled by a
workload factor, timing the advisor and decomposing the runtime into
the paper's categories (cost calculation / BIP construction / BIP
solving / other).

Shape assertions: runtime grows superlinearly with the scale factor,
and the BIP-solving share stays well below the total (the paper notes
"the runtime of the BIP is relatively short").  Absolute seconds differ
from the paper's Ruby prototype, and in this implementation plan-space
generation (part of "other") rather than BIP construction is the
largest non-solver component; EXPERIMENTS.md discusses the difference.
"""

import os

import pytest

from bench_common import BENCH_MAX_FACTOR, write_result
from repro import Advisor
from repro.randgen import random_model, random_workload

FACTORS = list(range(1, BENCH_MAX_FACTOR + 1))
#: seeds per factor; the median is reported (MILP hardness varies a lot
#: across random workloads, so more seeds give a smoother curve)
BENCH_SEEDS = int(os.environ.get("NOSE_BENCH_SEEDS", "1"))


def _advise(factor, seed_offset=0):
    model = random_model(entities=4 + 2 * factor, seed=factor
                         + seed_offset)
    workload = random_workload(model, queries=6 * factor,
                               updates=2 * factor, inserts=factor,
                               seed=factor + seed_offset)
    # branch-and-bound effort varies wildly across random instances;
    # bound it so the sweep finishes (a 0.5% optimality gap does not
    # change the runtime *shape* the experiment is about)
    from repro.optimizer import BIPOptimizer
    advisor = Advisor(model, optimizer=BIPOptimizer(mip_rel_gap=5e-3,
                                                    time_limit=60.0))
    recommendation = advisor.recommend(workload)
    return recommendation.timing


@pytest.fixture(scope="module")
def fig13():
    """Stage timings per scale factor (median over BENCH_SEEDS seeds)."""
    rows = {}
    for factor in FACTORS:
        samples = [_advise(factor, seed_offset=100 * offset)
                   for offset in range(BENCH_SEEDS)]
        samples.sort(key=lambda timing: timing.total)
        rows[factor] = samples[len(samples) // 2]
    return rows


def test_fig13_advisor_runtime(benchmark, fig13):
    """Wall-clock benchmark at the smallest factor (for trend context,
    the full sweep lives in the report test's table)."""
    benchmark.pedantic(lambda: _advise(1), rounds=3, iterations=1)


def test_fig13_report_and_shape(benchmark, fig13):
    lines = [f"{'factor':>6}{'total(s)':>10}{'cost calc':>11}"
             f"{'BIP constr':>12}{'BIP solve':>11}{'other':>9}"
             f"{'candidates':>12}"]
    for factor in FACTORS:
        timing = fig13[factor]
        row = timing.as_figure13_row()
        lines.append(f"{factor:>6}{row['total']:>10.2f}"
                     f"{row['cost_calculation']:>11.2f}"
                     f"{row['bip_construction']:>12.2f}"
                     f"{row['bip_solving']:>11.2f}"
                     f"{row['other']:>9.2f}"
                     f"{timing.candidates:>12}")
    from repro.reporting import stacked_series
    chart = stacked_series(
        {factor: fig13[factor].as_figure13_row() for factor in FACTORS},
        ["cost_calculation", "bip_construction", "bip_solving", "other"],
        width=50)
    table = "\n".join(lines) + "\n\n" + chart
    print("\n" + table)
    write_result("fig13_runtime.txt", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # -- shape assertions (paper Fig 13) ---------------------------------
    totals = [fig13[factor].total for factor in FACTORS]
    # runtime grows with the workload size ...
    assert totals[-1] > totals[0]
    # ... superlinearly: the largest factor costs disproportionately
    # more than linear extrapolation from factor 1 would predict
    assert totals[-1] > totals[0] * FACTORS[-1] * 1.2
    # every stage is represented and consistent
    for factor in FACTORS:
        timing = fig13[factor]
        named = (timing.cost_calculation + timing.bip_construction
                 + timing.bip_solving)
        assert 0 < named < timing.total
        assert timing.candidates > 0
