"""Benchmark: thousand-statement scaling of the staged advisor.

Measures end-to-end ``prepare`` + ``recommend_prepared`` over
template-based workloads of growing statement count and asserts the
prepare stage stays near-linear: per-statement prepare time may not
grow more than ``SUPERLINEARITY_BOUND``-fold from the smallest to the
largest size.  Template-based means a bounded set of structural
statement shapes instantiated under distinct labels — the realistic
OLTP shape (applications issue few distinct statement *forms*, many
times), and the regime where the candidate pool saturates instead of
growing with every added statement.  A fully-random workload grows its
pool superlinearly with the statement count and measures enumeration
explosion, not pipeline scaling.

Also gates the vectorized dominance engine: on the smallest size, a
full recommend with the scalar engine and one with the vector engine
must produce byte-identical explain documents.

Writes ``BENCH_scaling.json`` at the repo root.  Knobs:

``NOSE_BENCH_SCALING_SIZES``      comma-separated statement counts
                                  (default ``100,1000``; add 5000 for
                                  the full run)
``NOSE_BENCH_SCALING_TEMPLATES``  distinct structural shapes (default 24)
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time

from bench_common import write_result
from repro import Advisor, telemetry
from repro.explain import explain_document
from repro.randgen import random_model
from repro.randgen.statements import (
    _random_insert,
    _random_query,
    _random_update,
)
from repro.workload import Workload
from repro.workload.statements import Insert, Query, Update

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SIZES = [int(size) for size in os.environ.get(
    "NOSE_BENCH_SCALING_SIZES", "100,1000").split(",")]
TEMPLATES = int(os.environ.get("NOSE_BENCH_SCALING_TEMPLATES", "24"))
#: per-statement prepare time may grow at most this factor across a
#: 10x (default) size increase — a quadratic stage would show ~10x
SUPERLINEARITY_BOUND = 3.0


def template_workload(model, statements, templates=TEMPLATES, seed=17):
    """``statements`` instances of a bounded set of structural shapes.

    Roughly 90/8/2 read/update/insert, labels distinct per instance so
    every statement plans individually while the candidate pool stays
    bounded by the template set.
    """
    rng = random.Random(seed)
    query_forms = [_random_query(model, rng, number, 2)
                   for number in range(templates)]
    update_forms = [form for form in
                    (_random_update(model, rng, number, 2)
                     for number in range(max(2, templates // 6)))
                    if form is not None]
    insert_forms = [_random_insert(model, rng, number)
                    for number in range(max(1, templates // 12))]
    updates = statements * 8 // 100
    inserts = statements * 2 // 100
    queries = statements - updates - inserts
    workload = Workload(model)
    for number in range(queries):
        form = query_forms[number % len(query_forms)]
        workload.add_statement(
            Query(form.key_path, form.select, form.conditions,
                  label=f"q{number}"),
            weight=round(rng.uniform(0.1, 10.0), 2))
    for number in range(updates):
        form = update_forms[number % len(update_forms)]
        workload.add_statement(
            Update(form.key_path, form.settings, form.conditions,
                   label=f"u{number}"),
            weight=round(rng.uniform(0.1, 5.0), 2))
    for number in range(inserts):
        form = insert_forms[number % len(insert_forms)]
        workload.add_statement(
            Insert(form.key_path, form.settings, form.connections,
                   label=f"i{number}"),
            weight=round(rng.uniform(0.1, 5.0), 2))
    return workload


def _measure(model, size):
    workload = template_workload(model, size)
    advisor = Advisor(model)
    with telemetry.activate() as sink:
        started = time.perf_counter()
        prepared = advisor.prepare(workload)
        prepare_seconds = time.perf_counter() - started
        started = time.perf_counter()
        recommendation = advisor.recommend_prepared(prepared)
        recommend_seconds = time.perf_counter() - started
    counters = sink.report().metrics["counters"]
    return {
        "statements": len(list(workload.statements)),
        "prepare_seconds": prepare_seconds,
        "prepare_seconds_per_statement": prepare_seconds / size,
        "recommend_seconds": recommend_seconds,
        "stages": recommendation.timing.stage_breakdown(),
        "candidates": len(prepared.candidates),
        "query_plan_count": prepared.plan_count,
        "recommended_column_families": len(recommendation.indexes),
        "prune_vector_spaces": counters.get("prune.vector_spaces", 0),
        "prune_scalar_spaces": counters.get("prune.scalar_spaces", 0),
        "parallel_fallback_serial": counters.get(
            "parallel.fallback_serial", 0),
    }


def _engine_identity(model):
    """Byte-identical explain output: scalar vs vector dominance."""
    documents = []
    for engine in ("scalar", "vector"):
        advisor = Advisor(model, prune_engine=engine)
        recommendation = advisor.recommend(
            template_workload(model, min(SIZES)))
        documents.append(json.dumps(explain_document(recommendation),
                                    sort_keys=True))
    return documents[0] == documents[1]


def test_scaling_near_linear():
    model = random_model(entities=8, seed=7)
    rows = [_measure(model, size) for size in sorted(SIZES)]
    identical = _engine_identity(model)

    smallest, largest = rows[0], rows[-1]
    growth = (largest["prepare_seconds_per_statement"]
              / max(smallest["prepare_seconds_per_statement"], 1e-9))
    payload = {
        "workload": "randgen/template-oltp",
        "templates": TEMPLATES,
        "sizes": rows,
        "prepare_per_statement_growth": growth,
        "superlinearity_bound": SUPERLINEARITY_BOUND,
        "engines_byte_identical": identical,
        "cpu_count": os.cpu_count(),
    }
    (REPO_ROOT / "BENCH_scaling.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    lines = [f"{'stmts':>6} {'prepare':>9} {'ms/stmt':>8} "
             f"{'recommend':>10} {'pool':>6}"]
    for row in rows:
        lines.append(
            f"{row['statements']:>6} {row['prepare_seconds']:>8.2f}s "
            f"{1000 * row['prepare_seconds_per_statement']:>7.2f} "
            f"{row['recommend_seconds']:>9.2f}s "
            f"{row['candidates']:>6}")
    summary = ("\n".join(lines)
               + f"\n\nper-statement prepare growth "
               f"({smallest['statements']} -> "
               f"{largest['statements']} stmts): {growth:.2f}x"
               f"\nscalar == vector explain: {identical}"
               f"\ncpu_count: {os.cpu_count()}\n")
    print()
    print(summary)
    write_result("scaling.txt", summary)

    assert identical, \
        "vectorized dominance diverged from the scalar reference"
    # acceptance: prepare stays near-linear in the statement count
    assert growth <= SUPERLINEARITY_BOUND, (
        f"per-statement prepare time grew {growth:.2f}x from "
        f"{smallest['statements']} to {largest['statements']} "
        f"statements (bound {SUPERLINEARITY_BOUND}x)")
